package llm

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"sync"

	"repro/internal/trace"
)

// Cached wraps a Client with a response cache for temperature-0 requests.
// Temperature-0 completions are deterministic per prompt (both for real
// APIs in greedy mode and for the simulated models), so repeating one is
// pure waste; cached hits cost nothing and are not re-billed by downstream
// ledgers because Complete is simply not invoked. Requests with a positive
// temperature always pass through — caching them would destroy the retry
// randomization CEDAR's scheduler depends on.
type Cached struct {
	// Client is the underlying completion provider.
	Client Client
	// MaxEntries bounds the cache (LRU eviction); 0 means 4096.
	MaxEntries int
	// Tracer, when enabled, records cache_hit / cache_wait spans. Which
	// attempt leads a concurrent miss (and which attempts record waits) is
	// scheduling-dependent, so these spans are excluded from the
	// cross-worker determinism contract (DESIGN.md §10).
	Tracer *trace.Tracer

	mu       sync.Mutex
	table    map[uint64]*list.Element
	order    *list.List // front = most recently used
	inflight map[uint64]*inflightCall
	hits     int
	calls    int
}

type cacheEntry struct {
	key  uint64
	resp Response
}

// inflightCall tracks a cache miss currently being filled, so concurrent
// requests for the same prompt wait for the leader instead of invoking the
// model again (single-flight). Without it, claim-level parallelism would
// bill a duplicate prompt once or twice depending on goroutine timing.
type inflightCall struct {
	done chan struct{}
	resp Response
	err  error
}

// NewCached wraps a client with a temperature-0 cache.
func NewCached(client Client, maxEntries int) *Cached {
	return &Cached{Client: client, MaxEntries: maxEntries}
}

// Complete implements Client. Concurrent misses on the same key are
// single-flighted: one request invokes the model, the others block on it and
// share its response, so the underlying client sees each distinct
// temperature-0 prompt exactly once regardless of scheduling.
func (c *Cached) Complete(req Request) (Response, error) {
	if req.Temperature > 0 {
		return c.Client.Complete(req)
	}
	key := cacheKey(req)
	c.mu.Lock()
	c.calls++
	if c.table == nil {
		c.table = make(map[uint64]*list.Element)
		c.order = list.New()
		c.inflight = make(map[uint64]*inflightCall)
	}
	if el, ok := c.table[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.mu.Unlock()
		if c.Tracer.Enabled() {
			c.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindCacheHit, Model: req.Model})
		}
		return resp, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		// Count the wait as a hit whether or not the leader's call
		// succeeded: either way the model was not re-invoked for this
		// request. (Error-path waits previously went uncounted, so the hit
		// rate understated cache effectiveness under fault injection.)
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		if c.Tracer.Enabled() {
			outcome := trace.OutcomeOK
			if call.err != nil {
				outcome = trace.OutcomeError
			}
			c.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindCacheWait, Model: req.Model, Outcome: outcome})
		}
		return call.resp, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	resp, err := c.Client.Complete(req)
	call.resp, call.err = resp, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.table[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		for c.order.Len() > max {
			back := c.order.Back()
			delete(c.table, back.Value.(*cacheEntry).key)
			c.order.Remove(back)
		}
	}
	c.mu.Unlock()
	close(call.done)
	return resp, err
}

// Stats returns the number of temperature-0 lookups and hits so far.
func (c *Cached) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

// cacheKey hashes every request field that can change a temperature-0
// completion: the model, the messages, and MaxTokens (two identical prompts
// with different caps truncate differently, so they must not collide). Seed
// and Attempt are deliberately excluded — temperature-0 completions ignore
// the seed, and the attempt identity is observability metadata.
func cacheKey(req Request) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(req.Model))
	var cap [8]byte
	binary.LittleEndian.PutUint64(cap[:], uint64(req.MaxTokens))
	_, _ = h.Write(cap[:])
	for _, m := range req.Messages {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(m.Role))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(m.Content))
	}
	return h.Sum64()
}
