package llm

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// Cached wraps a Client with a response cache for temperature-0 requests.
// Temperature-0 completions are deterministic per prompt (both for real
// APIs in greedy mode and for the simulated models), so repeating one is
// pure waste; cached hits cost nothing and are not re-billed by downstream
// ledgers because Complete is simply not invoked. Requests with a positive
// temperature always pass through — caching them would destroy the retry
// randomization CEDAR's scheduler depends on.
type Cached struct {
	// Client is the underlying completion provider.
	Client Client
	// MaxEntries bounds the cache (LRU eviction); 0 means 4096.
	MaxEntries int

	mu    sync.Mutex
	table map[uint64]*list.Element
	order *list.List // front = most recently used
	hits  int
	calls int
}

type cacheEntry struct {
	key  uint64
	resp Response
}

// NewCached wraps a client with a temperature-0 cache.
func NewCached(client Client, maxEntries int) *Cached {
	return &Cached{Client: client, MaxEntries: maxEntries}
}

// Complete implements Client.
func (c *Cached) Complete(req Request) (Response, error) {
	if req.Temperature > 0 {
		return c.Client.Complete(req)
	}
	key := cacheKey(req)
	c.mu.Lock()
	c.calls++
	if c.table == nil {
		c.table = make(map[uint64]*list.Element)
		c.order = list.New()
	}
	if el, ok := c.table[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.mu.Unlock()
		return resp, nil
	}
	c.mu.Unlock()

	resp, err := c.Client.Complete(req)
	if err != nil {
		return resp, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.table[key]; !ok {
		c.table[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
		max := c.MaxEntries
		if max <= 0 {
			max = 4096
		}
		for c.order.Len() > max {
			back := c.order.Back()
			delete(c.table, back.Value.(*cacheEntry).key)
			c.order.Remove(back)
		}
	}
	return resp, nil
}

// Stats returns the number of temperature-0 lookups and hits so far.
func (c *Cached) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

func cacheKey(req Request) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(req.Model))
	for _, m := range req.Messages {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(m.Role))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(m.Content))
	}
	return h.Sum64()
}
