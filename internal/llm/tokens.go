package llm

import "strings"

// CountTokens estimates the token count of text with the standard
// byte-pair-encoding rule of thumb: roughly one token per four characters,
// but never fewer tokens than whitespace-delimited words (short words cost a
// full token each). The estimate only needs to be proportional and
// deterministic — CEDAR's cost model works on relative token volumes.
func CountTokens(text string) int {
	if text == "" {
		return 0
	}
	words := len(strings.Fields(text))
	byChars := (len(text) + 3) / 4
	if words > byChars {
		return words
	}
	return byChars
}

// CountMessageTokens estimates the prompt tokens of a chat request,
// including a small per-message framing overhead the way chat APIs bill.
func CountMessageTokens(msgs []Message) int {
	total := 0
	for _, m := range msgs {
		total += CountTokens(m.Content) + 4
	}
	return total
}
