package nl

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/textutil"
)

func moviesDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("movies")
	tab := sqldb.NewTable("movies", "title", "director", "runtime_min")
	rows := []struct {
		title, director string
		rt              int64
	}{
		{"A", "Ava Lindqvist", 100},
		{"B", "Ava Lindqvist", 110},
		{"C", "Marco Benedetti", 120},
		{"D", "Ava Lindqvist", 90},
		{"E", "Yuki Tanaka", 95},
	}
	for _, r := range rows {
		tab.MustAppendRow(sqldb.Text(r.title), sqldb.Text(r.director), sqldb.Int(r.rt))
	}
	db.AddTable(tab)
	return db
}

// TestModeRoundTrip exercises the GROUP BY claim kind end to end: build the
// gold query, render the sentence, mask, parse, rebuild, and compare.
func TestModeRoundTrip(t *testing.T) {
	db := moviesDB(t)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()
	spec := Spec{Kind: KindMode, Column: "director", Noun: "films"}

	goldSQL, err := BuildSQL(schema, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(goldSQL, "GROUP BY") || !strings.Contains(goldSQL, "ORDER BY COUNT(*) DESC LIMIT 1") {
		t.Fatalf("gold SQL shape: %s", goldSQL)
	}
	goldVal, err := sqldb.QueryScalar(db, goldSQL)
	if err != nil {
		t.Fatal(err)
	}
	if goldVal.Text() != "Ava Lindqvist" {
		t.Fatalf("mode = %v", goldVal)
	}

	sentence := RenderSentence(&spec, lex, RenderOptions{Value: goldVal.Text()})
	span, ok := textutil.FindValueSpan(sentence, goldVal.Text())
	if !ok {
		t.Fatalf("value not in %q", sentence)
	}
	masked := textutil.MaskSpan(sentence, span)
	parsed, err := ParseMasked(masked, schema, lex, "")
	if err != nil {
		t.Fatalf("ParseMasked(%q): %v", masked, err)
	}
	if parsed.Spec.Kind != KindMode || parsed.Spec.Column != "director" {
		t.Fatalf("parsed = %+v", parsed.Spec)
	}
	gotSQL, err := BuildSQL(schema, &parsed.Spec)
	if err != nil {
		t.Fatal(err)
	}
	gotVal, err := sqldb.QueryScalar(db, gotSQL)
	if err != nil {
		t.Fatal(err)
	}
	if gotVal.Text() != goldVal.Text() {
		t.Errorf("round trip: %v vs %v", gotVal, goldVal)
	}
	// The analyzer must see the GROUP BY.
	cx, err := sqldb.Analyze(goldSQL)
	if err != nil {
		t.Fatal(err)
	}
	if cx.GroupBys != 1 {
		t.Errorf("GroupBys = %d", cx.GroupBys)
	}
}
