package nl

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/textutil"
)

// Kind enumerates the semantic shapes of claims the corpus generates. The
// distribution over kinds per dataset drives the query-complexity statistics
// of Table 3.
type Kind int

// Claim kinds, roughly ordered by translation difficulty.
const (
	// KindLookup reads one cell: SELECT col FROM t WHERE entity = v.
	KindLookup Kind = iota
	// KindCountAll counts all rows of the entity table.
	KindCountAll
	// KindCount counts rows matching an equality filter.
	KindCount
	// KindSum aggregates a column with SUM (optional filter).
	KindSum
	// KindAvg aggregates a column with AVG (optional filter).
	KindAvg
	// KindMin aggregates a column with MIN.
	KindMin
	// KindMax aggregates a column with MAX.
	KindMax
	// KindDiff is the range MAX - MIN of a column.
	KindDiff
	// KindArgMax looks up the entity attaining the maximum of a column
	// (textual claim value).
	KindArgMax
	// KindArgMin looks up the entity attaining the minimum of a column.
	KindArgMin
	// KindPercent is the share of rows matching a filter, in percent.
	KindPercent
	// KindMode is the most frequent value of a categorical column
	// (requires GROUP BY; textual claim value).
	KindMode
)

// String returns the kind's name.
func (k Kind) String() string {
	names := [...]string{"Lookup", "CountAll", "Count", "Sum", "Avg", "Min", "Max", "Diff", "ArgMax", "ArgMin", "Percent", "Mode"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Difficulty returns a rough translation-difficulty score in [0,1] per kind.
func (k Kind) Difficulty() float64 {
	switch k {
	case KindLookup, KindCountAll:
		return 0.15
	case KindCount, KindSum, KindAvg:
		return 0.3
	case KindMin, KindMax:
		return 0.35
	case KindDiff:
		return 0.55
	case KindArgMax, KindArgMin:
		return 0.6
	case KindPercent:
		return 0.7
	case KindMode:
		return 0.65
	default:
		return 0.5
	}
}

// Spec is the semantic core of a claim: which relation of the data the
// claimed value denotes. A Spec plus a schema determines a SQL query; a Spec
// plus a lexicon determines an English sentence.
type Spec struct {
	Kind Kind
	// Column is the measure column (empty for Count/CountAll/Percent).
	Column string
	// EntityCol is the entity-identifying text column (Lookup, ArgMax,
	// ArgMin, and as COUNT target for Percent).
	EntityCol string
	// EntityVal is the entity constant for Lookup, as it should appear in
	// the SQL query (the sentence may use an alias).
	EntityVal string
	// FilterCol/FilterVal form an equality predicate (Count, Percent, and
	// optionally Sum/Avg/Min/Max).
	FilterCol string
	FilterVal string
	// FilterIsText marks whether FilterVal must be quoted in SQL.
	FilterIsText bool
	// ConvFactor multiplies the query result for unit conversion; 0 and 1
	// both mean "no conversion".
	ConvFactor float64
	// Noun is the plural table noun used in sentences ("airlines"); it
	// guides table resolution during parsing.
	Noun string
}

// ErrNoColumn indicates the spec references a column absent from the schema.
var ErrNoColumn = errors.New("nl: column not in schema")

// ErrNoJoinPath indicates the referenced columns live in tables that cannot
// be connected by shared key columns.
var ErrNoJoinPath = errors.New("nl: no join path between tables")

// converted wraps a SQL expression with the spec's unit-conversion factor.
func (s *Spec) converted(expr string) string {
	if s.ConvFactor == 0 || s.ConvFactor == 1 {
		return expr
	}
	return fmt.Sprintf("%s * %s", expr, textutil.FormatNumber(s.ConvFactor))
}

// BuildSQL renders the spec into a SQL query against the given schema,
// inserting joins when the referenced columns span multiple tables. This is
// the query-construction knowledge shared by the gold-label generator and
// the simulated models; what differs between them is which Spec they hold.
func BuildSQL(schema *Schema, s *Spec) (string, error) {
	switch s.Kind {
	case KindLookup:
		from, err := joinFor(schema, s.Column, s.EntityCol)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(`SELECT %s FROM %s WHERE %s = %s`,
			s.converted(q(s.Column)), from, q(s.EntityCol), quoteText(s.EntityVal)), nil
	case KindCountAll:
		if s.EntityCol == "" {
			return "", fmt.Errorf("%w: CountAll needs an entity column", ErrNoColumn)
		}
		from, err := joinFor(schema, s.EntityCol)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(`SELECT COUNT(%s) FROM %s`, q(s.EntityCol), from), nil
	case KindCount:
		from, err := joinFor(schema, s.FilterCol)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(`SELECT COUNT(*) FROM %s WHERE %s = %s`,
			from, q(s.FilterCol), s.filterLiteral()), nil
	case KindSum, KindAvg, KindMin, KindMax:
		agg := map[Kind]string{KindSum: "SUM", KindAvg: "AVG", KindMin: "MIN", KindMax: "MAX"}[s.Kind]
		cols := []string{s.Column}
		if s.FilterCol != "" {
			cols = append(cols, s.FilterCol)
		}
		from, err := joinFor(schema, cols...)
		if err != nil {
			return "", err
		}
		where := ""
		if s.FilterCol != "" {
			where = fmt.Sprintf(" WHERE %s = %s", q(s.FilterCol), s.filterLiteral())
		}
		return fmt.Sprintf(`SELECT %s FROM %s%s`,
			s.converted(fmt.Sprintf("%s(%s)", agg, q(s.Column))), from, where), nil
	case KindDiff:
		from, err := joinFor(schema, s.Column)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(`SELECT %s FROM %s`,
			s.converted(fmt.Sprintf("MAX(%s) - MIN(%s)", q(s.Column), q(s.Column))), from), nil
	case KindArgMax, KindArgMin:
		agg := "MAX"
		if s.Kind == KindArgMin {
			agg = "MIN"
		}
		from, err := joinFor(schema, s.Column, s.EntityCol)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(`SELECT %s FROM %s WHERE %s = (SELECT %s(%s) FROM %s)`,
			q(s.EntityCol), from, q(s.Column), agg, q(s.Column), from), nil
	case KindMode:
		from, err := joinFor(schema, s.Column)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(`SELECT %s FROM %s GROUP BY %s ORDER BY COUNT(*) DESC LIMIT 1`,
			q(s.Column), from, q(s.Column)), nil
	case KindPercent:
		cols := []string{s.FilterCol}
		if s.EntityCol != "" {
			cols = append(cols, s.EntityCol)
		}
		from, err := joinFor(schema, cols...)
		if err != nil {
			return "", err
		}
		target := "*"
		if s.EntityCol != "" {
			target = q(s.EntityCol)
		}
		return fmt.Sprintf(`SELECT (SELECT COUNT(%s) FROM %s WHERE %s = %s) * 100.0 / (SELECT COUNT(%s) FROM %s)`,
			target, from, q(s.FilterCol), s.filterLiteral(), target, from), nil
	}
	return "", fmt.Errorf("nl: unknown spec kind %v", s.Kind)
}

func (s *Spec) filterLiteral() string {
	if s.FilterIsText {
		return quoteText(s.FilterVal)
	}
	return s.FilterVal
}

func q(name string) string { return `"` + name + `"` }

func quoteText(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// FromClause builds the FROM/JOIN clause (without the FROM keyword) that
// covers all the given columns in the schema, joining tables through shared
// key columns when necessary. It is the exported form of the join
// construction used by BuildSQL, needed by callers that rewrite existing
// queries against a normalized schema.
func FromClause(schema *Schema, cols []string) (string, error) {
	return joinFor(schema, cols...)
}

// joinFor determines the FROM clause covering all the given columns: a
// single table when one table has them all, otherwise a join chain over
// tables connected by shared key columns (columns named *_id or id).
func joinFor(schema *Schema, cols ...string) (string, error) {
	var needed []string
	for _, c := range cols {
		if c != "" {
			needed = append(needed, c)
		}
	}
	if len(needed) == 0 {
		return "", fmt.Errorf("%w: no columns to locate", ErrNoColumn)
	}
	// Single-table fast path.
	for _, t := range schema.Tables {
		all := true
		for _, c := range needed {
			if !t.HasColumn(c) {
				all = false
				break
			}
		}
		if all {
			return q(t.Name), nil
		}
	}
	// Multi-table: pick one table per column, then connect them.
	home := make(map[string]string) // column -> table
	for _, c := range needed {
		tabs := schema.TablesWithColumn(c)
		if len(tabs) == 0 {
			return "", fmt.Errorf("%w: %q", ErrNoColumn, c)
		}
		home[c] = tabs[0]
	}
	tableSet := map[string]bool{}
	var tables []string
	for _, c := range needed {
		if !tableSet[home[c]] {
			tableSet[home[c]] = true
			tables = append(tables, home[c])
		}
	}
	if len(tables) == 1 {
		return q(tables[0]), nil
	}
	return joinChain(schema, tables)
}

// joinChain builds a FROM clause connecting the given tables through shared
// key columns, inserting intermediate tables when needed (BFS over the
// key-sharing graph).
func joinChain(schema *Schema, targets []string) (string, error) {
	covered := map[string]bool{strings.ToLower(targets[0]): true}
	from := q(targets[0])
	for _, target := range targets[1:] {
		if covered[strings.ToLower(target)] {
			continue
		}
		path, err := shortestPath(schema, covered, target)
		if err != nil {
			return "", err
		}
		for _, hop := range path {
			from += fmt.Sprintf(" JOIN %s ON %s.%s = %s.%s",
				q(hop.to), q(hop.from), q(hop.key), q(hop.to), q(hop.key))
			covered[strings.ToLower(hop.to)] = true
		}
	}
	return from, nil
}

type joinHop struct {
	from, to, key string
}

// shortestPath finds a key-join path from any covered table to target.
func shortestPath(schema *Schema, covered map[string]bool, target string) ([]joinHop, error) {
	type node struct {
		table string
		path  []joinHop
	}
	var queue []node
	visited := map[string]bool{}
	for t := range covered {
		queue = append(queue, node{table: t})
		visited[t] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curTab := schema.Table(cur.table)
		if curTab == nil {
			continue
		}
		for _, other := range schema.Tables {
			lo := strings.ToLower(other.Name)
			if visited[lo] {
				continue
			}
			key := sharedKey(curTab, &other)
			if key == "" {
				continue
			}
			path := append(append([]joinHop{}, cur.path...), joinHop{from: curTab.Name, to: other.Name, key: key})
			if strings.EqualFold(other.Name, target) {
				return path, nil
			}
			visited[lo] = true
			queue = append(queue, node{table: lo, path: path})
		}
	}
	return nil, fmt.Errorf("%w: cannot reach %q", ErrNoJoinPath, target)
}

// sharedKey returns a column name shared by both tables that looks like a
// join key (id or *_id), or "" when none exists.
func sharedKey(a, b *SchemaTable) string {
	for _, c := range a.Columns {
		lower := strings.ToLower(c.Name)
		if lower != "id" && !strings.HasSuffix(lower, "_id") {
			continue
		}
		if b.HasColumn(c.Name) {
			return c.Name
		}
	}
	return ""
}
