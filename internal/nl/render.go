package nl

import (
	"fmt"
)

// ClaimVerbs are the interchangeable verbs claim templates may use; the
// parser normalizes all of them to the canonical "recorded" before template
// matching, the way a language model treats synonyms.
var ClaimVerbs = []string{"recorded", "had", "reported"}

// RenderOptions control how a Spec is verbalized. The generator uses these
// to plant hazards: an alias instead of the canonical entity value, an
// underspecified column phrase, or a unit-converted phrase.
type RenderOptions struct {
	// Value is the claim value exactly as it should appear in the text.
	Value string
	// ColumnPhrase overrides the phrase used for Spec.Column (e.g. a short
	// ambiguous phrase or a unit-converted phrase). Empty uses the
	// lexicon's canonical phrase.
	ColumnPhrase string
	// EntityDisplay overrides the surface form of Spec.EntityVal (e.g. an
	// alias that does not occur in the data). Empty uses Spec.EntityVal.
	EntityDisplay string
	// FilterPhrase overrides the phrase for Spec.FilterCol.
	FilterPhrase string
	// FilterDisplay overrides the surface form of Spec.FilterVal.
	FilterDisplay string
	// Verb selects the claim verb ("recorded", "had", "reported"); empty
	// uses the canonical "recorded".
	Verb string
}

// Sentence cue fragments shared between rendering and parsing. Keeping them
// as named constants guarantees the two stay inverse operations.
const (
	cueCountAll = "The data covers exactly "
	cueCount    = "Exactly "
	cueSum      = "A total of "
	cueAvg      = "On average, the "
	cueDiff     = "The gap between the highest and the lowest "
	cueMax      = "The highest "
	cueMin      = "The lowest "
	cuePercent  = " percent of the "
	cueArgMax   = " recorded the highest "
	cueArgMin   = " recorded the lowest "
	cueMode     = " is the most common "
	cueRecorded = " recorded "
)

// RenderSentence verbalizes a spec into a claim sentence using the
// templates of the claim language. The sentence always contains opt.Value
// verbatim so the generator can locate the claim-value span.
func RenderSentence(spec *Spec, lex *Lexicon, opt RenderOptions) string {
	v := opt.Value
	colPhrase := opt.ColumnPhrase
	if colPhrase == "" {
		colPhrase = lex.ColumnPhrase(spec.Column)
	}
	filterPhrase := opt.FilterPhrase
	if filterPhrase == "" && spec.FilterCol != "" {
		filterPhrase = lex.ColumnPhrase(spec.FilterCol)
	}
	filterVal := opt.FilterDisplay
	if filterVal == "" {
		filterVal = spec.FilterVal
	}
	entity := opt.EntityDisplay
	if entity == "" {
		entity = spec.EntityVal
	}
	noun := spec.Noun
	verb := opt.Verb
	if verb == "" {
		verb = "recorded"
	}

	switch spec.Kind {
	case KindLookup:
		return fmt.Sprintf("%s %s %s %s.", entity, verb, v, colPhrase)
	case KindCountAll:
		return fmt.Sprintf("%s%s %s.", cueCountAll, v, noun)
	case KindCount:
		return fmt.Sprintf("%s%s %s %s %s of %s.", cueCount, v, noun, verb, filterPhrase, filterVal)
	case KindSum:
		if spec.FilterCol != "" {
			return fmt.Sprintf("%s%s %s were recorded across %s with %s of %s.",
				cueSum, v, colPhrase, noun, filterPhrase, filterVal)
		}
		return fmt.Sprintf("%s%s %s were recorded across all %s.", cueSum, v, colPhrase, noun)
	case KindAvg:
		if spec.FilterCol != "" {
			return fmt.Sprintf("%s%s with %s of %s %s %s %s.",
				cueAvg, noun, filterPhrase, filterVal, verb, v, colPhrase)
		}
		return fmt.Sprintf("%s%s %s %s %s.", cueAvg, noun, verb, v, colPhrase)
	case KindMin:
		return fmt.Sprintf("%s%s recorded was %s.", cueMin, colPhrase, v)
	case KindMax:
		return fmt.Sprintf("%s%s recorded was %s.", cueMax, colPhrase, v)
	case KindDiff:
		return fmt.Sprintf("%s%s was %s.", cueDiff, colPhrase, v)
	case KindArgMax:
		return fmt.Sprintf("%s%s%s of all %s.", v, cueArgMax, colPhrase, noun)
	case KindArgMin:
		return fmt.Sprintf("%s%s%s of all %s.", v, cueArgMin, colPhrase, noun)
	case KindPercent:
		return fmt.Sprintf("About %s%s%s %s %s of %s.", v, cuePercent, noun, verb, filterPhrase, filterVal)
	case KindMode:
		return fmt.Sprintf("%s%s%s among the %s.", v, cueMode, colPhrase, noun)
	}
	return fmt.Sprintf("%s is %s.", colPhrase, v)
}
