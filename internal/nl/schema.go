// Package nl defines the natural-language claim layer shared by the
// benchmark generator and the simulated language models: query specs (the
// semantic core of a claim), sentence templates that render specs into
// English claims, a lexicon mapping corpus columns to phrases and units, and
// a parser mapping masked claim sentences back to specs against a schema.
//
// The generator renders Spec -> sentence; the simulated model parses
// sentence -> Spec against the schema text it finds in its prompt, exactly
// the way a real LLM reads English and CREATE TABLE statements. Hazards
// (entity aliases, ambiguous phrases, unit mismatches) are planted in the
// rendered text and data, so translation failures and agent-tool recoveries
// arise from the same mechanisms the paper describes.
package nl

import (
	"strings"

	"repro/internal/sqldb"
)

// SchemaColumn is one column of a schema as visible in prompt text.
type SchemaColumn struct {
	Name string
	Type string // SQL type name, e.g. TEXT, INTEGER, REAL
}

// SchemaTable is one table of a schema.
type SchemaTable struct {
	Name    string
	Columns []SchemaColumn
}

// HasColumn reports whether the table has the named column
// (case-insensitive).
func (t *SchemaTable) HasColumn(name string) bool {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return true
		}
	}
	return false
}

// Schema is the structural description of a database as recoverable from
// the {db_schema} prompt placeholder.
type Schema struct {
	Tables []SchemaTable
}

// SchemaFromDatabase extracts the Schema of an in-memory database.
func SchemaFromDatabase(db *sqldb.Database) *Schema {
	s := &Schema{}
	for _, t := range db.Tables() {
		st := SchemaTable{Name: t.Name}
		for _, c := range t.Columns {
			st.Columns = append(st.Columns, SchemaColumn{Name: c.Name, Type: c.Type.String()})
		}
		s.Tables = append(s.Tables, st)
	}
	return s
}

// ParseSchemaText recovers a Schema from CREATE TABLE statements of the form
// produced by sqldb.Database.Schema — the form embedded in verification
// prompts. Lines that do not look like CREATE TABLE are ignored, mirroring
// how a model skims prompt text.
func ParseSchemaText(text string) *Schema {
	s := &Schema{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		upper := strings.ToUpper(line)
		if !strings.HasPrefix(upper, "CREATE TABLE") {
			continue
		}
		open := strings.IndexByte(line, '(')
		if open < 0 {
			continue
		}
		namePart := strings.TrimSpace(line[len("CREATE TABLE"):open])
		name := strings.Trim(namePart, `" `)
		if name == "" {
			continue
		}
		body := line[open+1:]
		if close := strings.LastIndexByte(body, ')'); close >= 0 {
			body = body[:close]
		}
		st := SchemaTable{Name: name}
		for _, colDef := range splitTopLevel(body, ',') {
			colDef = strings.TrimSpace(colDef)
			if colDef == "" {
				continue
			}
			colName, colType := splitColDef(colDef)
			if colName != "" {
				st.Columns = append(st.Columns, SchemaColumn{Name: colName, Type: colType})
			}
		}
		s.Tables = append(s.Tables, st)
	}
	return s
}

// splitColDef separates `"col name" TYPE` into name and type, handling
// quoted names containing spaces.
func splitColDef(def string) (name, typ string) {
	def = strings.TrimSpace(def)
	if strings.HasPrefix(def, `"`) {
		end := strings.Index(def[1:], `"`)
		if end < 0 {
			return strings.Trim(def, `"`), ""
		}
		return def[1 : 1+end], strings.TrimSpace(def[2+end:])
	}
	fields := strings.Fields(def)
	if len(fields) == 0 {
		return "", ""
	}
	return fields[0], strings.Join(fields[1:], " ")
}

// splitTopLevel splits s on sep outside quoted regions.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth := 0
	inQuote := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == sep && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

// Table returns the named table (case-insensitive), or nil.
func (s *Schema) Table(name string) *SchemaTable {
	for i := range s.Tables {
		if strings.EqualFold(s.Tables[i].Name, name) {
			return &s.Tables[i]
		}
	}
	return nil
}

// TablesWithColumn returns the names of all tables containing the column.
func (s *Schema) TablesWithColumn(col string) []string {
	var out []string
	for _, t := range s.Tables {
		if t.HasColumn(col) {
			out = append(out, t.Name)
		}
	}
	return out
}

// IsTextColumn reports whether the named column is typed TEXT in any table
// that has it.
func (s *Schema) IsTextColumn(col string) bool {
	for _, t := range s.Tables {
		for _, c := range t.Columns {
			if strings.EqualFold(c.Name, col) && strings.EqualFold(c.Type, "TEXT") {
				return true
			}
		}
	}
	return false
}
