package nl

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/embed"
	"repro/internal/textutil"
)

// variantVecs memoizes embeddings of lexicon-derived variant texts (column
// phrases, headers, unit-converted phrases). The set is bounded by the
// lexicon, and profiling shows repeated embedding of these variants
// dominating parse cost; claims' free-form phrases are embedded once per
// resolution and not cached.
var variantVecs sync.Map // string -> embed.Vector

func variantVec(text string) embed.Vector {
	if v, ok := variantVecs.Load(text); ok {
		return v.(embed.Vector)
	}
	vec := embed.Embed(text)
	variantVecs.Store(text, vec)
	return vec
}

// Candidate is one possible resolution of a phrase to a schema column.
type Candidate struct {
	Column string
	// Score in [0,1] measures how well the phrase matches the column.
	Score float64
	// ConvFactor is non-zero when the phrase matched a unit-converted
	// variant of the column's canonical phrase.
	ConvFactor float64
}

// Parsed is the result of parsing a masked claim sentence: the best-guess
// spec plus ranked alternatives that a model may (mis)choose between.
type Parsed struct {
	Spec Spec
	// ColumnCands ranks resolutions for the measure column (first is the
	// one installed in Spec).
	ColumnCands []Candidate
	// FilterCands ranks resolutions for the filter column.
	FilterCands []Candidate
	// Ambiguous reports that the top two measure-column candidates score
	// within ambiguityMargin of each other.
	Ambiguous bool
}

// ErrUnparseable indicates the sentence matches no known claim template,
// the situation in which a real LLM produces an unusable translation.
var ErrUnparseable = errors.New("nl: sentence matches no claim template")

const ambiguityMargin = 0.08

// ParseMasked parses a masked claim sentence (value replaced by "x") into a
// Parsed spec against the given schema. ctx is the masked context paragraph;
// when non-empty it is used to disambiguate underspecified column phrases,
// which is why stronger simulated models (that read context) resolve
// ambiguity hazards better than weaker ones (that ignore it).
func ParseMasked(masked string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	s := normalizeVerbs(strings.TrimSpace(masked))
	switch {
	case strings.HasPrefix(s, cueCountAll):
		return parseCountAll(s, schema, lex)
	case strings.HasPrefix(s, cueCount) && !strings.HasPrefix(s, cueCountAll):
		return parseCount(s, schema, lex, ctx)
	case strings.HasPrefix(s, cueSum):
		return parseSum(s, schema, lex, ctx)
	case strings.HasPrefix(s, cueAvg):
		return parseAvg(s, schema, lex, ctx)
	case strings.HasPrefix(s, cueDiff):
		return parseAggOnly(s, cueDiff, KindDiff, " was x.", schema, lex, ctx)
	case strings.HasPrefix(s, cueMax):
		return parseAggOnly(s, cueMax, KindMax, " recorded was x.", schema, lex, ctx)
	case strings.HasPrefix(s, cueMin):
		return parseAggOnly(s, cueMin, KindMin, " recorded was x.", schema, lex, ctx)
	case strings.Contains(s, cuePercent):
		return parsePercent(s, schema, lex, ctx)
	case strings.Contains(s, cueMode):
		return parseMode(s, schema, lex, ctx)
	case strings.Contains(s, cueArgMax):
		return parseArg(s, cueArgMax, KindArgMax, schema, lex, ctx)
	case strings.Contains(s, cueArgMin):
		return parseArg(s, cueArgMin, KindArgMin, schema, lex, ctx)
	case strings.Contains(s, cueRecorded):
		return parseLookup(s, schema, lex, ctx)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnparseable, truncateStr(masked, 80))
}

// normalizeVerbs maps the claim-verb synonyms to the canonical "recorded"
// so every template matcher sees one verb. Superlative cues ("recorded the
// highest") are phrased with the canonical verb only, so plain substitution
// is safe.
func normalizeVerbs(s string) string {
	for _, v := range ClaimVerbs[1:] {
		s = strings.ReplaceAll(s, " "+v+" ", " recorded ")
	}
	return s
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func trimSentence(s string) string {
	return strings.TrimSuffix(strings.TrimSpace(s), ".")
}

// --- template parsers ---

func parseCountAll(s string, schema *Schema, lex *Lexicon) (*Parsed, error) {
	rest := trimSentence(strings.TrimPrefix(s, cueCountAll))
	// rest = "x <noun>"
	if !strings.HasPrefix(rest, "x ") {
		return nil, fmt.Errorf("%w: CountAll without masked value", ErrUnparseable)
	}
	noun := strings.TrimPrefix(rest, "x ")
	table := resolveTable(noun, schema, lex)
	if table == nil {
		return nil, fmt.Errorf("%w: no table for noun %q", ErrUnparseable, noun)
	}
	ent := EntityColumnOf(table)
	if ent == "" {
		return nil, fmt.Errorf("%w: no entity column in table %q", ErrUnparseable, table.Name)
	}
	return &Parsed{Spec: Spec{Kind: KindCountAll, EntityCol: ent, Noun: noun}}, nil
}

func parseCount(s string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	rest := trimSentence(strings.TrimPrefix(s, cueCount))
	// rest = "x <noun> recorded <filterphrase> of <fv>"
	if !strings.HasPrefix(rest, "x ") {
		return nil, fmt.Errorf("%w: Count without masked value", ErrUnparseable)
	}
	rest = strings.TrimPrefix(rest, "x ")
	noun, tail, ok := strings.Cut(rest, cueRecorded)
	if !ok {
		return nil, fmt.Errorf("%w: Count without verb", ErrUnparseable)
	}
	phrase, fv, ok := cutLast(tail, " of ")
	if !ok {
		return nil, fmt.Errorf("%w: Count without filter value", ErrUnparseable)
	}
	cands := resolveColumn(phrase, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, phrase)
	}
	p := &Parsed{
		Spec: Spec{
			Kind:         KindCount,
			FilterCol:    cands[0].Column,
			FilterVal:    fv,
			FilterIsText: schema.IsTextColumn(cands[0].Column) || !textutil.IsNumeric(fv),
			Noun:         noun,
		},
		FilterCands: cands,
	}
	return p, nil
}

func parseSum(s string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	rest := trimSentence(strings.TrimPrefix(s, cueSum))
	// rest = "x <colphrase> were recorded across all <noun>"
	//      | "x <colphrase> were recorded across <noun> with <filterphrase> of <fv>"
	if !strings.HasPrefix(rest, "x ") {
		return nil, fmt.Errorf("%w: Sum without masked value", ErrUnparseable)
	}
	rest = strings.TrimPrefix(rest, "x ")
	phrase, tail, ok := strings.Cut(rest, " were recorded across ")
	if !ok {
		return nil, fmt.Errorf("%w: Sum without across clause", ErrUnparseable)
	}
	cands := resolveColumn(phrase, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, phrase)
	}
	p := &Parsed{ColumnCands: cands, Ambiguous: ambiguous(cands)}
	p.Spec = Spec{Kind: KindSum, Column: cands[0].Column, ConvFactor: cands[0].ConvFactor}
	if after, ok := strings.CutPrefix(tail, "all "); ok {
		p.Spec.Noun = after
		return p, nil
	}
	noun, filterPart, ok := strings.Cut(tail, " with ")
	if !ok {
		p.Spec.Noun = tail
		return p, nil
	}
	p.Spec.Noun = noun
	fPhrase, fv, ok := cutLast(filterPart, " of ")
	if !ok {
		return nil, fmt.Errorf("%w: Sum filter without value", ErrUnparseable)
	}
	fc := resolveColumn(fPhrase, schema, lex, ctx)
	if len(fc) == 0 {
		return nil, fmt.Errorf("%w: no filter column for %q", ErrUnparseable, fPhrase)
	}
	p.FilterCands = fc
	p.Spec.FilterCol = fc[0].Column
	p.Spec.FilterVal = fv
	p.Spec.FilterIsText = schema.IsTextColumn(fc[0].Column) || !textutil.IsNumeric(fv)
	return p, nil
}

func parseAvg(s string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	rest := trimSentence(strings.TrimPrefix(s, cueAvg))
	// rest = "<noun> recorded x <colphrase>"
	//      | "<noun> with <filterphrase> of <fv> recorded x <colphrase>"
	head, tail, ok := strings.Cut(rest, " recorded x ")
	if !ok {
		return nil, fmt.Errorf("%w: Avg without masked value", ErrUnparseable)
	}
	cands := resolveColumn(tail, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, tail)
	}
	p := &Parsed{ColumnCands: cands, Ambiguous: ambiguous(cands)}
	p.Spec = Spec{Kind: KindAvg, Column: cands[0].Column, ConvFactor: cands[0].ConvFactor}
	if noun, filterPart, ok := strings.Cut(head, " with "); ok {
		fPhrase, fv, ok2 := cutLast(filterPart, " of ")
		if !ok2 {
			return nil, fmt.Errorf("%w: Avg filter without value", ErrUnparseable)
		}
		fc := resolveColumn(fPhrase, schema, lex, ctx)
		if len(fc) == 0 {
			return nil, fmt.Errorf("%w: no filter column for %q", ErrUnparseable, fPhrase)
		}
		p.FilterCands = fc
		p.Spec.Noun = noun
		p.Spec.FilterCol = fc[0].Column
		p.Spec.FilterVal = fv
		p.Spec.FilterIsText = schema.IsTextColumn(fc[0].Column) || !textutil.IsNumeric(fv)
	} else {
		p.Spec.Noun = head
	}
	return p, nil
}

func parseAggOnly(s, cue string, kind Kind, suffix string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	rest := strings.TrimPrefix(s, cue)
	idx := strings.LastIndex(rest, suffix)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %v without value suffix", ErrUnparseable, kind)
	}
	phrase := rest[:idx]
	cands := resolveColumn(phrase, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, phrase)
	}
	return &Parsed{
		Spec:        Spec{Kind: kind, Column: cands[0].Column, ConvFactor: cands[0].ConvFactor},
		ColumnCands: cands,
		Ambiguous:   ambiguous(cands),
	}, nil
}

func parsePercent(s string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	// "About x percent of the <noun> recorded <filterphrase> of <fv>."
	_, rest, ok := strings.Cut(s, cuePercent)
	if !ok {
		return nil, fmt.Errorf("%w: Percent cue missing", ErrUnparseable)
	}
	rest = trimSentence(rest)
	noun, tail, ok := strings.Cut(rest, cueRecorded)
	if !ok {
		return nil, fmt.Errorf("%w: Percent without verb", ErrUnparseable)
	}
	fPhrase, fv, ok := cutLast(tail, " of ")
	if !ok {
		return nil, fmt.Errorf("%w: Percent without filter value", ErrUnparseable)
	}
	fc := resolveColumn(fPhrase, schema, lex, ctx)
	if len(fc) == 0 {
		return nil, fmt.Errorf("%w: no filter column for %q", ErrUnparseable, fPhrase)
	}
	table := resolveTable(noun, schema, lex)
	ent := ""
	if table != nil {
		ent = EntityColumnOf(table)
	}
	return &Parsed{
		Spec: Spec{
			Kind:         KindPercent,
			EntityCol:    ent,
			FilterCol:    fc[0].Column,
			FilterVal:    fv,
			FilterIsText: schema.IsTextColumn(fc[0].Column) || !textutil.IsNumeric(fv),
			Noun:         noun,
		},
		FilterCands: fc,
	}, nil
}

func parseArg(s, cue string, kind Kind, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	// "x recorded the highest <colphrase> of all <noun>."
	_, rest, ok := strings.Cut(s, cue)
	if !ok {
		return nil, fmt.Errorf("%w: Arg cue missing", ErrUnparseable)
	}
	rest = trimSentence(rest)
	phrase, noun, ok := cutLast(rest, " of all ")
	if !ok {
		return nil, fmt.Errorf("%w: Arg without noun", ErrUnparseable)
	}
	cands := resolveColumn(phrase, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, phrase)
	}
	table := resolveTable(noun, schema, lex)
	ent := ""
	if table != nil {
		ent = EntityColumnOf(table)
	}
	if ent == "" {
		ent = firstEntityColumn(schema)
	}
	if ent == "" {
		return nil, fmt.Errorf("%w: no entity column for Arg claim", ErrUnparseable)
	}
	return &Parsed{
		Spec:        Spec{Kind: kind, Column: cands[0].Column, EntityCol: ent, Noun: noun},
		ColumnCands: cands,
		Ambiguous:   ambiguous(cands),
	}, nil
}

func parseMode(s string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	// "x is the most common <colphrase> among the <noun>."
	_, rest, ok := strings.Cut(s, cueMode)
	if !ok {
		return nil, fmt.Errorf("%w: Mode cue missing", ErrUnparseable)
	}
	rest = trimSentence(rest)
	phrase, _, ok := cutLast(rest, " among the ")
	if !ok {
		phrase = rest
	}
	cands := resolveColumn(phrase, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, phrase)
	}
	return &Parsed{
		Spec:        Spec{Kind: KindMode, Column: cands[0].Column},
		ColumnCands: cands,
		Ambiguous:   ambiguous(cands),
	}, nil
}

func parseLookup(s string, schema *Schema, lex *Lexicon, ctx string) (*Parsed, error) {
	// "<entity> recorded x <colphrase>."
	entity, tail, ok := strings.Cut(trimSentence(s), " recorded x ")
	if !ok {
		return nil, fmt.Errorf("%w: Lookup without masked value", ErrUnparseable)
	}
	cands := resolveColumn(tail, schema, lex, ctx)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no column for %q", ErrUnparseable, tail)
	}
	// The entity column is guessed from headers: prefer the entity column
	// of a table that owns the measure column, else any entity column.
	ent := ""
	for _, t := range schema.Tables {
		if t.HasColumn(cands[0].Column) {
			if e := EntityColumnOf(&t); e != "" {
				ent = e
				break
			}
		}
	}
	if ent == "" {
		ent = firstEntityColumn(schema)
	}
	if ent == "" {
		return nil, fmt.Errorf("%w: no entity column for Lookup", ErrUnparseable)
	}
	return &Parsed{
		Spec: Spec{
			Kind:       KindLookup,
			Column:     cands[0].Column,
			EntityCol:  ent,
			EntityVal:  entity,
			ConvFactor: cands[0].ConvFactor,
		},
		ColumnCands: cands,
		Ambiguous:   ambiguous(cands),
	}, nil
}

// --- resolution helpers ---

// resolveColumn ranks all schema columns against a phrase, considering each
// column's canonical phrase, underspecified short phrase, raw header, and
// unit-converted phrase variants. When ctx is non-empty, candidates whose
// distinguishing tokens occur in the context get boosted — the mechanism by
// which context reading disambiguates "fatal accidents" into the right
// period column.
func resolveColumn(phrase string, schema *Schema, lex *Lexicon, ctx string) []Candidate {
	phrase = strings.TrimSpace(phrase)
	if phrase == "" {
		return nil
	}
	ctxNorm := " " + embed.Normalize(ctx) + " "
	phraseVec := embed.Embed(phrase)
	var cands []Candidate
	seen := map[string]bool{}
	for _, t := range schema.Tables {
		for _, c := range t.Columns {
			lower := strings.ToLower(c.Name)
			if seen[lower] {
				continue
			}
			seen[lower] = true
			best, factor := scoreColumn(phraseVec, c.Name, lex)
			if best <= 0.3 {
				continue
			}
			if ctx != "" {
				best += contextBoost(phrase, c.Name, lex, ctxNorm)
			}
			cands = append(cands, Candidate{Column: c.Name, Score: best, ConvFactor: factor})
		}
	}
	// Stable ranking: by score descending, ties by name for determinism.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && less(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return cands
}

func less(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Column < b.Column
}

// scoreColumn returns the best similarity between the (pre-embedded)
// phrase and any verbalization of the column, plus the conversion factor if
// the best match was a unit-converted variant.
func scoreColumn(phraseVec embed.Vector, col string, lex *Lexicon) (float64, float64) {
	variants := []struct {
		text   string
		factor float64
	}{
		{lex.ColumnPhrase(col), 0},
		{strings.ReplaceAll(strings.ToLower(col), "_", " "), 0},
	}
	if short := lex.ShortPhrase(col); short != "" {
		variants = append(variants, struct {
			text   string
			factor float64
		}{short, 0})
	}
	if baseUnit := lex.ColumnUnit(col); baseUnit != "" {
		full := lex.ColumnPhrase(col)
		for _, u := range lex.Units {
			if u.From == baseUnit && strings.Contains(full, baseUnit) {
				variants = append(variants, struct {
					text   string
					factor float64
				}{strings.Replace(full, baseUnit, u.To, 1), u.Factor})
			}
		}
	}
	best, bestFactor := 0.0, 0.0
	for _, v := range variants {
		s := embed.Cosine(phraseVec, variantVec(v.text))
		if s > best {
			best = s
			bestFactor = v.factor
		}
	}
	return best, bestFactor
}

// contextBoost rewards a candidate column whose full-phrase tokens beyond
// the given phrase occur in the context, e.g. context mentioning "between
// 2000 and 2014" boosts fatal_accidents_00_14 over fatal_accidents_85_99.
func contextBoost(phrase, col string, lex *Lexicon, ctxNorm string) float64 {
	full := embed.Normalize(lex.ColumnPhrase(col))
	have := map[string]bool{}
	for _, tok := range strings.Fields(embed.Normalize(phrase)) {
		have[tok] = true
	}
	extra, found := 0, 0
	for _, tok := range strings.Fields(full) {
		if have[tok] {
			continue
		}
		extra++
		if strings.Contains(ctxNorm, " "+tok+" ") {
			found++
		}
	}
	if extra == 0 || found == 0 {
		return 0
	}
	return 0.2 * float64(found) / float64(extra)
}

func ambiguous(cands []Candidate) bool {
	return len(cands) >= 2 && cands[0].Score-cands[1].Score < ambiguityMargin
}

// resolveTable maps a plural noun to the best-matching schema table.
func resolveTable(noun string, schema *Schema, lex *Lexicon) *SchemaTable {
	var best *SchemaTable
	bestScore := 0.0
	for i := range schema.Tables {
		t := &schema.Tables[i]
		score := embed.Similarity(noun, lex.TableNoun(t.Name))
		if s2 := embed.Similarity(noun, t.Name); s2 > score {
			score = s2
		}
		if score > bestScore {
			bestScore = score
			best = t
		}
	}
	if bestScore <= 0.2 && len(schema.Tables) > 0 {
		// Fall back to the first table with an entity column, the way a
		// model defaults to "the main table".
		for i := range schema.Tables {
			if EntityColumnOf(&schema.Tables[i]) != "" {
				return &schema.Tables[i]
			}
		}
		return &schema.Tables[0]
	}
	return best
}

func firstEntityColumn(schema *Schema) string {
	for i := range schema.Tables {
		if e := EntityColumnOf(&schema.Tables[i]); e != "" {
			return e
		}
	}
	return ""
}

// cutLast splits s around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, ok bool) {
	idx := strings.LastIndex(s, sep)
	if idx < 0 {
		return s, "", false
	}
	return s[:idx], s[idx+len(sep):], true
}
