package nl

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// filterDB has both a measure and a small-cardinality filter column so the
// filtered Sum/Avg template variants can round-trip.
func filterDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("f")
	tab := sqldb.NewTable("airlines", "airline", "fatal_accidents_00_14", "fatalities_00_14")
	tab.MustAppendRow(sqldb.Text("A"), sqldb.Int(0), sqldb.Int(10))
	tab.MustAppendRow(sqldb.Text("B"), sqldb.Int(2), sqldb.Int(100))
	tab.MustAppendRow(sqldb.Text("C"), sqldb.Int(2), sqldb.Int(200))
	db.AddTable(tab)
	return db
}

// TestFilteredAggregateRoundTrip covers the "with <filter> of <v>" template
// variants of Sum and Avg.
func TestFilteredAggregateRoundTrip(t *testing.T) {
	db := filterDB(t)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()
	for _, kind := range []Kind{KindSum, KindAvg} {
		spec := Spec{
			Kind:      kind,
			Column:    "fatalities_00_14",
			FilterCol: "fatal_accidents_00_14",
			FilterVal: "2",
			Noun:      "airlines",
		}
		goldSQL, err := BuildSQL(schema, &spec)
		if err != nil {
			t.Fatal(err)
		}
		goldVal, err := sqldb.QueryScalar(db, goldSQL)
		if err != nil {
			t.Fatal(err)
		}
		sentence := RenderSentence(&spec, lex, RenderOptions{Value: goldVal.String()})
		span, ok := textutil.FindValueSpan(sentence, goldVal.String())
		if !ok {
			t.Fatalf("%v: value not in %q", kind, sentence)
		}
		masked := textutil.MaskSpan(sentence, span)
		parsed, err := ParseMasked(masked, schema, lex, "")
		if err != nil {
			t.Fatalf("%v: parse %q: %v", kind, masked, err)
		}
		if parsed.Spec.Kind != kind || parsed.Spec.FilterCol != "fatal_accidents_00_14" || parsed.Spec.FilterVal != "2" {
			t.Fatalf("%v: parsed %+v", kind, parsed.Spec)
		}
		gotSQL, err := BuildSQL(schema, &parsed.Spec)
		if err != nil {
			t.Fatal(err)
		}
		gotVal, err := sqldb.QueryScalar(db, gotSQL)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal.String() != goldVal.String() {
			t.Errorf("%v: %v vs %v", kind, gotVal, goldVal)
		}
	}
}

func TestParseMalformedTemplateVariants(t *testing.T) {
	db := filterDB(t)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()
	malformed := []string{
		"The data covers exactly airlines.",             // CountAll without x
		"Exactly airlines recorded things of 3.",        // Count without x
		"A total of fatalities were recorded across.",   // Sum without x
		"On average, the airlines did nothing.",         // Avg without value marker
		"Exactly x airlines recorded no filter marker.", // Count without " of "
	}
	for _, s := range malformed {
		if _, err := ParseMasked(s, schema, lex, ""); err == nil {
			t.Errorf("expected parse failure for %q", s)
		}
	}
}

func TestFromClauseExported(t *testing.T) {
	db := filterDB(t)
	schema := SchemaFromDatabase(db)
	from, err := FromClause(schema, []string{"fatalities_00_14", "airline"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(from, "airlines") {
		t.Errorf("from = %q", from)
	}
	if _, err := FromClause(schema, []string{"missing_col"}); err == nil {
		t.Error("expected error for missing column")
	}
	if _, err := FromClause(schema, nil); err == nil {
		t.Error("expected error for empty column list")
	}
}

func TestResolveTableFallback(t *testing.T) {
	db := filterDB(t)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()
	// A noun that matches nothing falls back to a table with an entity
	// column rather than nil.
	tab := resolveTable("zzzzqq", schema, lex)
	if tab == nil || tab.Name != "airlines" {
		t.Errorf("fallback table = %+v", tab)
	}
}

func TestCutLast(t *testing.T) {
	before, after, ok := cutLast("a of b of c", " of ")
	if !ok || before != "a of b" || after != "c" {
		t.Errorf("cutLast = %q %q %v", before, after, ok)
	}
	if _, _, ok := cutLast("nothing here", " of "); ok {
		t.Error("cutLast found absent separator")
	}
}

func TestDifficultyMonotonicity(t *testing.T) {
	// Every kind has a difficulty in (0, 1]; hard kinds above easy ones.
	for k := KindLookup; k <= KindMode; k++ {
		d := k.Difficulty()
		if d <= 0 || d > 1 {
			t.Errorf("difficulty(%v) = %v", k, d)
		}
	}
	if KindPercent.Difficulty() <= KindCount.Difficulty() {
		t.Error("Percent must be harder than Count")
	}
	if Kind(99).Difficulty() != 0.5 {
		t.Error("unknown kind default difficulty")
	}
}

func TestFirstEntityColumn(t *testing.T) {
	db := filterDB(t)
	if got := firstEntityColumn(SchemaFromDatabase(db)); got != "airline" {
		t.Errorf("firstEntityColumn = %q", got)
	}
	empty := &Schema{Tables: []SchemaTable{{Name: "t", Columns: []SchemaColumn{{Name: "v", Type: "INTEGER"}}}}}
	if got := firstEntityColumn(empty); got != "" {
		t.Errorf("expected no entity column, got %q", got)
	}
}
