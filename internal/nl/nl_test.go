package nl

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/textutil"
)

func fixtureDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("airlinesafety")
	tab := sqldb.NewTable("airlines", "airline", "incidents_85_99", "fatal_accidents_00_14", "fatalities_00_14", "avail_seat_km_per_week")
	rows := []struct {
		a          string
		i, f, d, s int64
	}{
		{"Aer Lingus", 2, 0, 0, 320906734},
		{"Aeroflot", 76, 1, 88, 1197672318},
		{"Malaysia Airlines", 3, 2, 537, 1039171244},
		{"United / Continental", 19, 2, 109, 7139291291},
	}
	for _, r := range rows {
		tab.MustAppendRow(sqldb.Text(r.a), sqldb.Int(r.i), sqldb.Int(r.f), sqldb.Int(r.d), sqldb.Int(r.s))
	}
	db.AddTable(tab)
	return db
}

func normalizedDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("airlinesafety_norm")
	ents := sqldb.NewTable("airlines", "airline_id", "airline")
	ents.MustAppendRow(sqldb.Int(1), sqldb.Text("Aer Lingus"))
	ents.MustAppendRow(sqldb.Int(2), sqldb.Text("Malaysia Airlines"))
	safety := sqldb.NewTable("safety", "airline_id", "fatal_accidents_00_14", "fatalities_00_14")
	safety.MustAppendRow(sqldb.Int(1), sqldb.Int(0), sqldb.Int(0))
	safety.MustAppendRow(sqldb.Int(2), sqldb.Int(2), sqldb.Int(537))
	db.AddTable(ents)
	db.AddTable(safety)
	return db
}

// TestRenderParseRoundTrip is the central invariant of the claim language:
// for every kind, rendering a spec, masking the value, parsing it back, and
// building SQL yields a query whose result equals the gold query's result.
func TestRenderParseRoundTrip(t *testing.T) {
	db := fixtureDB(t)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()
	specs := []Spec{
		{Kind: KindLookup, Column: "fatal_accidents_00_14", EntityCol: "airline", EntityVal: "Malaysia Airlines", Noun: "airlines"},
		{Kind: KindCountAll, EntityCol: "airline", Noun: "airlines"},
		{Kind: KindCount, FilterCol: "fatal_accidents_00_14", FilterVal: "2", Noun: "airlines"},
		{Kind: KindSum, Column: "fatalities_00_14", Noun: "airlines"},
		{Kind: KindSum, Column: "fatalities_00_14", FilterCol: "fatal_accidents_00_14", FilterVal: "2", Noun: "airlines"},
		{Kind: KindAvg, Column: "incidents_85_99", Noun: "airlines"},
		{Kind: KindMin, Column: "incidents_85_99", Noun: "airlines"},
		{Kind: KindMax, Column: "fatalities_00_14", Noun: "airlines"},
		{Kind: KindDiff, Column: "incidents_85_99", Noun: "airlines"},
		{Kind: KindArgMax, Column: "fatalities_00_14", EntityCol: "airline", Noun: "airlines"},
		{Kind: KindArgMin, Column: "incidents_85_99", EntityCol: "airline", Noun: "airlines"},
		{Kind: KindPercent, EntityCol: "airline", FilterCol: "fatal_accidents_00_14", FilterVal: "2", Noun: "airlines"},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Kind.String(), func(t *testing.T) {
			goldSQL, err := BuildSQL(schema, &spec)
			if err != nil {
				t.Fatalf("gold BuildSQL: %v", err)
			}
			goldVal, err := sqldb.QueryScalar(db, goldSQL)
			if err != nil {
				t.Fatalf("gold query %q: %v", goldSQL, err)
			}
			sentence := RenderSentence(&spec, lex, RenderOptions{Value: goldVal.String()})
			span, ok := textutil.FindValueSpan(sentence, goldVal.String())
			if !ok {
				t.Fatalf("value %q not found in sentence %q", goldVal.String(), sentence)
			}
			masked := textutil.MaskSpan(sentence, span)
			parsed, err := ParseMasked(masked, schema, lex, "")
			if err != nil {
				t.Fatalf("ParseMasked(%q): %v", masked, err)
			}
			if parsed.Spec.Kind != spec.Kind {
				t.Fatalf("kind = %v want %v (masked %q)", parsed.Spec.Kind, spec.Kind, masked)
			}
			gotSQL, err := BuildSQL(schema, &parsed.Spec)
			if err != nil {
				t.Fatalf("BuildSQL(parsed): %v", err)
			}
			gotVal, err := sqldb.QueryScalar(db, gotSQL)
			if err != nil {
				t.Fatalf("parsed query %q: %v", gotSQL, err)
			}
			if gotVal.String() != goldVal.String() {
				t.Errorf("parsed %q -> %v, gold %q -> %v", gotSQL, gotVal, goldSQL, goldVal)
			}
		})
	}
}

func TestBuildSQLJoins(t *testing.T) {
	db := normalizedDB(t)
	schema := SchemaFromDatabase(db)
	spec := Spec{Kind: KindLookup, Column: "fatal_accidents_00_14", EntityCol: "airline", EntityVal: "Malaysia Airlines"}
	sql, err := BuildSQL(schema, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "JOIN") {
		t.Errorf("expected join in %q", sql)
	}
	v, err := sqldb.QueryScalar(db, sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	if n, _ := v.AsInt(); n != 2 {
		t.Errorf("join lookup = %v", v)
	}

	// ArgMax across the join.
	am := Spec{Kind: KindArgMax, Column: "fatalities_00_14", EntityCol: "airline"}
	sql, err = BuildSQL(schema, &am)
	if err != nil {
		t.Fatal(err)
	}
	v, err = sqldb.QueryScalar(db, sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	if v.Text() != "Malaysia Airlines" {
		t.Errorf("argmax = %v", v)
	}
}

func TestBuildSQLErrors(t *testing.T) {
	schema := &Schema{Tables: []SchemaTable{
		{Name: "a", Columns: []SchemaColumn{{Name: "x", Type: "INTEGER"}}},
		{Name: "b", Columns: []SchemaColumn{{Name: "y", Type: "INTEGER"}}},
	}}
	if _, err := BuildSQL(schema, &Spec{Kind: KindSum, Column: "zz"}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing column err = %v", err)
	}
	// x and y live in unjoinable tables.
	if _, err := BuildSQL(schema, &Spec{Kind: KindLookup, Column: "x", EntityCol: "y", EntityVal: "v"}); !errors.Is(err, ErrNoJoinPath) {
		t.Errorf("no join path err = %v", err)
	}
}

func TestParseSchemaText(t *testing.T) {
	db := fixtureDB(t)
	text := db.Schema()
	schema := ParseSchemaText(text)
	if len(schema.Tables) != 1 {
		t.Fatalf("tables = %+v", schema.Tables)
	}
	tab := schema.Tables[0]
	if tab.Name != "airlines" || len(tab.Columns) != 5 {
		t.Fatalf("table = %+v", tab)
	}
	if tab.Columns[0].Name != "airline" || tab.Columns[0].Type != "TEXT" {
		t.Errorf("col0 = %+v", tab.Columns[0])
	}
	if !schema.IsTextColumn("airline") || schema.IsTextColumn("fatalities_00_14") {
		t.Error("IsTextColumn misclassifies")
	}
	// Quoted identifiers with spaces survive.
	s2 := ParseSchemaText(`CREATE TABLE "grand prix" ("Driver Name" TEXT, "Wins" INTEGER);`)
	if s2.Tables[0].Name != "grand prix" || s2.Tables[0].Columns[0].Name != "Driver Name" {
		t.Errorf("quoted schema = %+v", s2.Tables[0])
	}
	// Garbage lines are skipped.
	s3 := ParseSchemaText("hello\nCREATE TABLE t (a INTEGER);\nworld")
	if len(s3.Tables) != 1 {
		t.Errorf("garbage tolerance: %+v", s3.Tables)
	}
}

func TestAmbiguityDetectionAndContextBoost(t *testing.T) {
	db := sqldb.NewDatabase("amb")
	tab := sqldb.NewTable("airlines", "airline", "fatal_accidents_85_99", "fatal_accidents_00_14")
	tab.MustAppendRow(sqldb.Text("A"), sqldb.Int(1), sqldb.Int(2))
	db.AddTable(tab)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()

	// The underspecified phrase ties between the two period columns.
	masked := "The highest fatal accidents recorded was x."
	parsed, err := ParseMasked(masked, schema, lex, "")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Ambiguous {
		t.Errorf("expected ambiguity, candidates: %+v", parsed.ColumnCands)
	}

	// A context mentioning the 2000-2014 period breaks the tie.
	ctx := "All figures refer to the period between 2000 and 2014."
	parsed, err = ParseMasked(masked, schema, lex, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Spec.Column != "fatal_accidents_00_14" {
		t.Errorf("context should pick 00_14, got %q (cands %+v)", parsed.Spec.Column, parsed.ColumnCands)
	}
}

func TestUnitConversionParsing(t *testing.T) {
	db := sqldb.NewDatabase("units")
	tab := sqldb.NewTable("cities", "city", "area_km2", "elevation_m")
	tab.MustAppendRow(sqldb.Text("Denver"), sqldb.Float(401.3), sqldb.Int(1609))
	db.AddTable(tab)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()

	spec := Spec{Kind: KindLookup, Column: "elevation_m", EntityCol: "city", EntityVal: "Denver", ConvFactor: 3.28084, Noun: "cities"}
	unit, factor, ok := lex.ConvertedUnitFor("elevation_m")
	if !ok || unit != "feet" {
		t.Fatalf("ConvertedUnitFor = %q %v %v", unit, factor, ok)
	}
	phrase := strings.Replace(lex.ColumnPhrase("elevation_m"), "metres", unit, 1)
	sentence := RenderSentence(&spec, lex, RenderOptions{Value: "5279", ColumnPhrase: phrase})
	span, ok := textutil.FindValueSpan(sentence, "5279")
	if !ok {
		t.Fatalf("no span in %q", sentence)
	}
	masked := textutil.MaskSpan(sentence, span)
	parsed, err := ParseMasked(masked, schema, lex, "")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Spec.Column != "elevation_m" {
		t.Fatalf("column = %q", parsed.Spec.Column)
	}
	if parsed.Spec.ConvFactor < 3.2 || parsed.Spec.ConvFactor > 3.3 {
		t.Errorf("conv factor = %v", parsed.Spec.ConvFactor)
	}
	sql, err := BuildSQL(schema, &parsed.Spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sqldb.QueryScalar(db, sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	f, _ := v.AsFloat()
	if f < 5270 || f < 0 || f > 5290 {
		t.Errorf("converted elevation = %v", v)
	}
}

func TestParseUnparseable(t *testing.T) {
	db := fixtureDB(t)
	schema := SchemaFromDatabase(db)
	lex := DefaultLexicon()
	for _, s := range []string{
		"", "This sentence has no template.", "x", "Exactly pancakes.",
	} {
		if _, err := ParseMasked(s, schema, lex, ""); !errors.Is(err, ErrUnparseable) {
			t.Errorf("ParseMasked(%q) err = %v", s, err)
		}
	}
}

func TestLexiconConversions(t *testing.T) {
	lex := DefaultLexicon()
	f, ok := lex.Conversion("kilometres", "miles")
	if !ok || f < 0.62 || f > 0.63 {
		t.Errorf("km->miles = %v %v", f, ok)
	}
	// Reverse direction derived automatically.
	f, ok = lex.Conversion("miles", "kilometres")
	if !ok || f < 1.6 || f > 1.61 {
		t.Errorf("miles->km = %v %v", f, ok)
	}
	if _, ok := lex.Conversion("kilometres", "gallons"); ok {
		t.Error("nonsense conversion accepted")
	}
	if f, ok := lex.Conversion("feet", "feet"); !ok || f != 1 {
		t.Error("identity conversion")
	}
}

func TestAliases(t *testing.T) {
	lex := DefaultLexicon()
	al := lex.AliasesFor("USA")
	if len(al) == 0 {
		t.Fatal("no aliases for USA")
	}
	if lex.AliasesFor("Malaysia Airlines") != nil {
		t.Error("unexpected aliases")
	}
}

func TestEntityColumnOf(t *testing.T) {
	tab := SchemaTable{Name: "t", Columns: []SchemaColumn{
		{Name: "count", Type: "INTEGER"},
		{Name: "airline", Type: "TEXT"},
	}}
	if got := EntityColumnOf(&tab); got != "airline" {
		t.Errorf("got %q", got)
	}
	tab2 := SchemaTable{Name: "t", Columns: []SchemaColumn{
		{Name: "notes", Type: "TEXT"},
		{Name: "v", Type: "INTEGER"},
	}}
	if got := EntityColumnOf(&tab2); got != "notes" {
		t.Errorf("text fallback got %q", got)
	}
	tab3 := SchemaTable{Name: "t", Columns: []SchemaColumn{{Name: "v", Type: "INTEGER"}}}
	if got := EntityColumnOf(&tab3); got != "" {
		t.Errorf("no entity got %q", got)
	}
}

func TestKindStringAndDifficulty(t *testing.T) {
	if KindLookup.String() != "Lookup" || KindPercent.String() != "Percent" {
		t.Error("kind names")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind name")
	}
	if KindLookup.Difficulty() >= KindPercent.Difficulty() {
		t.Error("difficulty ordering")
	}
}
