package nl

import "strings"

// ColumnEntry describes how one corpus column surfaces in English.
type ColumnEntry struct {
	// Phrase is the canonical noun phrase for the column ("fatal accidents
	// between 2000 and 2014").
	Phrase string
	// Short is an underspecified variant used to plant ambiguity hazards
	// ("fatal accidents"); empty when the column has no ambiguous sibling.
	Short string
	// Unit names the column's measurement unit ("kilometres"); empty for
	// unitless columns.
	Unit string
}

// UnitConversion describes a convertible unit pair: a value stored in From
// units equals value*Factor in To units.
type UnitConversion struct {
	From   string
	To     string
	Factor float64
}

// Lexicon is the shared vocabulary: how columns, tables, and entities are
// verbalized. It plays the role of general language knowledge — both the
// corpus generator and the simulated models have it, the way both a human
// author and GPT-4 know English.
type Lexicon struct {
	// Columns maps column name (lowercase) to its entry.
	Columns map[string]ColumnEntry
	// Nouns maps table name (lowercase) to the plural noun used for its
	// rows ("airlines" -> "airlines", "drinks" -> "countries").
	Nouns map[string]string
	// Aliases maps a canonical data value (lowercase) to display variants
	// that documents may use instead ("usa" -> "the United States").
	Aliases map[string][]string
	// Units lists the convertible unit pairs.
	Units []UnitConversion
}

// DefaultLexicon returns the lexicon covering the built-in corpus.
func DefaultLexicon() *Lexicon {
	return &Lexicon{
		Columns: map[string]ColumnEntry{
			// 538 airline safety
			"airline":                {Phrase: "airline"},
			"avail_seat_km_per_week": {Phrase: "available seat kilometres flown every week", Unit: "kilometres"},
			"incidents_85_99":        {Phrase: "incidents between 1985 and 1999", Short: "incidents"},
			"fatal_accidents_85_99":  {Phrase: "fatal accidents between 1985 and 1999", Short: "fatal accidents"},
			"fatalities_85_99":       {Phrase: "fatalities between 1985 and 1999", Short: "fatalities"},
			"incidents_00_14":        {Phrase: "incidents between 2000 and 2014", Short: "incidents"},
			"fatal_accidents_00_14":  {Phrase: "fatal accidents between 2000 and 2014", Short: "fatal accidents"},
			"fatalities_00_14":       {Phrase: "fatalities between 2000 and 2014", Short: "fatalities"},
			// 538 alcohol consumption
			"country":                      {Phrase: "country"},
			"beer_servings":                {Phrase: "servings of beer consumed per person"},
			"spirit_servings":              {Phrase: "servings of spirits consumed per person"},
			"wine_servings":                {Phrase: "glasses of wine consumed per person"},
			"total_litres_of_pure_alcohol": {Phrase: "litres of pure alcohol consumed per person", Unit: "litres"},
			// StackOverflow survey
			"language":                {Phrase: "programming language"},
			"developers_using":        {Phrase: "developers using the language"},
			"avg_salary_usd":          {Phrase: "average salary in dollars", Unit: "dollars"},
			"satisfaction_score":      {Phrase: "satisfaction score"},
			"years_experience_avg":    {Phrase: "average years of experience"},
			"respondents":             {Phrase: "survey respondents"},
			"remote_share_pct":        {Phrase: "share of developers working remotely in percent"},
			"open_source_contrib_pct": {Phrase: "share of developers contributing to open source in percent"},
			"job_seeking_pct":         {Phrase: "share of developers seeking a new job in percent"},
			"median_age":              {Phrase: "median age of developers"},
			"median_salary_usd":       {Phrase: "median salary in dollars", Unit: "dollars"},
			// NYTimes housing & commute
			"neighborhood":        {Phrase: "neighborhood"},
			"median_rent_usd":     {Phrase: "median monthly rent in dollars", Unit: "dollars"},
			"median_income_usd":   {Phrase: "median household income in dollars", Unit: "dollars"},
			"avg_unit_sqft":       {Phrase: "average apartment size in square feet"},
			"bike_share_pct":      {Phrase: "share of commuters cycling in percent"},
			"founded_year":        {Phrase: "founding year"},
			"population":          {Phrase: "residents"},
			"vacancy_rate_pct":    {Phrase: "vacancy rate in percent"},
			"city":                {Phrase: "city"},
			"avg_commute_minutes": {Phrase: "average commute time in minutes", Unit: "minutes"},
			"transit_share_pct":   {Phrase: "share of commuters using transit in percent"},
			// Wikipedia Formula One
			"driver":        {Phrase: "driver"},
			"wins":          {Phrase: "race wins"},
			"podiums":       {Phrase: "podium finishes"},
			"championships": {Phrase: "world championships"},
			"races_started": {Phrase: "races started"},
			// Wikipedia cities
			"area_km2":    {Phrase: "area in square kilometres", Unit: "square kilometres"},
			"elevation_m": {Phrase: "elevation in metres", Unit: "metres"},
			// Wikipedia movies
			"title":           {Phrase: "film"},
			"director":        {Phrase: "director"},
			"box_office_musd": {Phrase: "box office earnings in millions of dollars", Unit: "millions of dollars"},
			"runtime_min":     {Phrase: "runtime in minutes", Unit: "minutes"},
			"year":            {Phrase: "release year"},
			// TabFact-style sports tables
			"club":          {Phrase: "club"},
			"played":        {Phrase: "matches played"},
			"won":           {Phrase: "matches won"},
			"drawn":         {Phrase: "matches drawn"},
			"lost":          {Phrase: "matches lost"},
			"goals_for":     {Phrase: "goals scored"},
			"goals_against": {Phrase: "goals conceded"},
			"points":        {Phrase: "points earned"},
			// TabFact-style albums
			"album":      {Phrase: "album"},
			"artist":     {Phrase: "artist"},
			"sales_m":    {Phrase: "copies sold in millions"},
			"weeks_no1":  {Phrase: "weeks at number one"},
			"chart_peak": {Phrase: "chart peak position"},
			// JoinBench normalization keys
			"airline_id": {Phrase: "airline identifier"},
			"country_id": {Phrase: "country identifier"},
			"driver_id":  {Phrase: "driver identifier"},
		},
		Nouns: map[string]string{
			"airlines":     "airlines",
			"drinks":       "countries",
			"so_survey":    "programming languages",
			"so_countries": "countries surveyed",
			"housing":      "neighborhoods",
			"commute":      "cities",
			"f1":           "drivers",
			"cities":       "cities",
			"movies":       "films",
			"standings":    "clubs",
			"albums":       "albums",
		},
		Aliases: map[string][]string{
			"usa":                       {"the United States", "America"},
			"uk":                        {"Britain", "the United Kingdom"},
			"netherlands":               {"the Netherlands"},
			"czech republic":            {"Czechia"},
			"south korea":               {"Korea"},
			"united / continental":      {"United Airlines"},
			"delta / northwest":         {"Delta Air Lines"},
			"us airways / america west": {"US Airways"},
			"all nippon airways":        {"All Nippon"},
			"japan airlines":            {"Japan Air"},
			"southwest airlines":        {"Southwest"},
			"american airlines":         {"American Air"},
			"alaska airlines":           {"Alaska Air"},
			"turkish airlines":          {"Turkish Air"},
			"british airways":           {"British Air"},
			"new york city":             {"NYC"},
			"javascript":                {"JS"},
			"c#":                        {"C Sharp"},
			"go":                        {"Golang"},
			"lewis hamilton":            {"Hamilton"},
			"michael schumacher":        {"Schumacher"},
			"max verstappen":            {"Verstappen"},
			"juan manuel fangio":        {"Fangio"},
			"sebastian vettel":          {"Vettel"},
			"fernando alonso":           {"Alonso"},
			"bedford-stuyvesant":        {"Bed-Stuy"},
			"morningside heights":       {"Morningside"},
			"battery park city":         {"Battery Park"},
		},
		Units: []UnitConversion{
			{From: "kilometres", To: "miles", Factor: 0.621371},
			{From: "square kilometres", To: "square miles", Factor: 0.386102},
			{From: "metres", To: "feet", Factor: 3.28084},
			{From: "litres", To: "gallons", Factor: 0.264172},
			{From: "minutes", To: "hours", Factor: 1.0 / 60},
			{From: "dollars", To: "thousands of dollars", Factor: 0.001},
			{From: "millions of dollars", To: "dollars", Factor: 1e6},
		},
	}
}

// ColumnPhrase returns the canonical phrase of a column, falling back to the
// column name with underscores replaced by spaces (what an LLM would do with
// an unknown header).
func (l *Lexicon) ColumnPhrase(col string) string {
	if e, ok := l.Columns[strings.ToLower(col)]; ok && e.Phrase != "" {
		return e.Phrase
	}
	return strings.ReplaceAll(strings.ToLower(col), "_", " ")
}

// ColumnUnit returns the unit of a column, or "".
func (l *Lexicon) ColumnUnit(col string) string {
	return l.Columns[strings.ToLower(col)].Unit
}

// ShortPhrase returns the ambiguous short phrase of a column, or "" when the
// column has none.
func (l *Lexicon) ShortPhrase(col string) string {
	return l.Columns[strings.ToLower(col)].Short
}

// TableNoun returns the plural noun for a table's rows, falling back to the
// table name.
func (l *Lexicon) TableNoun(table string) string {
	if n, ok := l.Nouns[strings.ToLower(table)]; ok {
		return n
	}
	return strings.ToLower(table)
}

// AliasesFor returns the display variants of a canonical data value
// (excluding the value itself), or nil.
func (l *Lexicon) AliasesFor(value string) []string {
	return l.Aliases[strings.ToLower(value)]
}

// Conversion looks up the factor converting a value stored in fromUnit to
// toUnit. ok is false when the pair is not convertible.
func (l *Lexicon) Conversion(fromUnit, toUnit string) (float64, bool) {
	if fromUnit == toUnit {
		return 1, true
	}
	for _, u := range l.Units {
		if u.From == fromUnit && u.To == toUnit {
			return u.Factor, true
		}
		if u.From == toUnit && u.To == fromUnit {
			return 1 / u.Factor, true
		}
	}
	return 0, false
}

// ConvertedUnitFor returns the alternative unit a column's values can be
// expressed in, with the factor, or ok=false for unitless columns.
func (l *Lexicon) ConvertedUnitFor(col string) (unit string, factor float64, ok bool) {
	base := l.ColumnUnit(col)
	if base == "" {
		return "", 0, false
	}
	for _, u := range l.Units {
		if u.From == base {
			return u.To, u.Factor, true
		}
	}
	return "", 0, false
}

// EntityColumnNames lists column names that identify entities; the parser
// uses it to guess filter columns the way an LLM guesses from headers.
var entityColumnNames = map[string]bool{
	"airline": true, "country": true, "language": true, "neighborhood": true,
	"city": true, "driver": true, "title": true, "director": true,
	"club": true, "album": true, "artist": true, "name": true, "team": true,
}

// IsEntityColumn reports whether a column name identifies entities.
func IsEntityColumn(name string) bool {
	return entityColumnNames[strings.ToLower(name)]
}

// EntityColumnOf returns the entity column of a schema table, preferring
// known entity names, then any TEXT column, then "".
func EntityColumnOf(t *SchemaTable) string {
	for _, c := range t.Columns {
		if IsEntityColumn(c.Name) {
			return c.Name
		}
	}
	for _, c := range t.Columns {
		if strings.EqualFold(c.Type, "TEXT") {
			return c.Name
		}
	}
	return ""
}
