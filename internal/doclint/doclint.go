// Package doclint enforces the repository's documented-surface guarantee:
// every flag a binary registers must be documented in docs/CLI.md, and
// every Go package must carry a package comment. It is a library consumed
// by tests — each cmd package has a doclint_test.go walking its own
// flag.FlagSet, and the package-comment sweep runs from this package's own
// test — so `make doclint` (part of `make check` and CI) fails the build
// when code and documentation drift apart.
package doclint

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// RepoRoot locates the repository root by walking up from the current
// directory to the nearest go.mod — tests run with the package directory as
// their working directory, so this finds the checkout they belong to.
func RepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("doclint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Doc reads a markdown file, given slash-relative to the repository root
// (e.g. "docs/DATA.md").
func Doc(rel string) (string, error) {
	root, err := RepoRoot()
	if err != nil {
		return "", err
	}
	raw, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
	if err != nil {
		return "", fmt.Errorf("doclint: reading %s: %w", rel, err)
	}
	return string(raw), nil
}

// CLIDoc reads docs/CLI.md from the repository root.
func CLIDoc() (string, error) {
	return Doc("docs/CLI.md")
}

// BinarySection extracts the named binary's section of docs/CLI.md: from
// its "## <binary>" heading to the next "## " heading. Scoping the flag
// check to the section means a flag documented only for another binary
// still fails — each binary's reference must be complete on its own.
func BinarySection(doc, binary string) (string, error) {
	heading := "## " + binary
	lines := strings.Split(doc, "\n")
	start := -1
	for i, line := range lines {
		if strings.TrimRight(line, " \t") == heading {
			start = i + 1
			break
		}
	}
	if start < 0 {
		return "", fmt.Errorf("doclint: docs/CLI.md has no %q section", heading)
	}
	end := len(lines)
	for i := start; i < len(lines); i++ {
		if strings.HasPrefix(lines[i], "## ") {
			end = i
			break
		}
	}
	return strings.Join(lines[start:end], "\n"), nil
}

// MissingFlags walks every flag registered on fs and returns the names not
// documented in the binary's docs/CLI.md section. A flag counts as
// documented when the section contains it as inline code — `-name` alone
// or with an argument placeholder, `-name arg`.
func MissingFlags(doc, binary string, fs *flag.FlagSet) ([]string, error) {
	section, err := BinarySection(doc, binary)
	if err != nil {
		return nil, err
	}
	var missing []string
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(section, "`-"+f.Name+"`") &&
			!strings.Contains(section, "`-"+f.Name+" ") {
			missing = append(missing, f.Name)
		}
	})
	sort.Strings(missing)
	return missing, nil
}

// MissingPackageComments parses every Go package under the repository root
// and returns the directories (relative to the root) whose package lacks a
// package comment on any of its non-test files. Test-only directories and
// testdata are skipped; examples are held to the same standard as shipped
// code.
func MissingPackageComments(root string) ([]string, error) {
	var missing []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return fs.SkipDir
		}
		ok, found, err := packageHasComment(path)
		if err != nil {
			return err
		}
		if found && !ok {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			missing = append(missing, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(missing)
	return missing, nil
}

// packageHasComment reports whether the directory holds non-test Go files
// (found) and whether any of them carries a package doc comment (ok).
func packageHasComment(dir string) (ok, found bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		found = true
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, true, err
		}
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, found, nil
}
