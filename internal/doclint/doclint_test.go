package doclint

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

// TestDoclintPackageComments is the repo-wide half of the documented-surface
// gate: every shipped package must open with a package comment.
func TestDoclintPackageComments(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	missing, err := MissingPackageComments(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("packages missing a package comment:\n  %s", strings.Join(missing, "\n  "))
	}
}

// TestDoclintDataJourney keeps the dataset-onboarding journey in
// docs/DATA.md tied to the surfaces it walks through: if a rename drops
// one of these from the page, the journey is no longer reproducible from
// the docs alone and this gate fails.
func TestDoclintDataJourney(t *testing.T) {
	doc, err := Doc("docs/DATA.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, surface := range []string{
		"cedar ingest",
		"`-dataset",
		"`-cache-dir`",
		"`-claims-out`",
		"`-sample-rows`",
		"`-max-ingest-bytes`",
		"POST /v1/datasets",
		"DELETE /v1/datasets",
		"fingerprint",
		"reservoir",
		// The inference table must name every column type the engine infers.
		"int", "float", "bool", "date", "string",
	} {
		if !strings.Contains(doc, surface) {
			t.Errorf("docs/DATA.md no longer mentions %q", surface)
		}
	}
}

func TestRepoRootFindsGoMod(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(root) != "repo" {
		t.Errorf("RepoRoot = %q, want the checkout directory", root)
	}
}

func TestBinarySectionScoping(t *testing.T) {
	doc := "# CLI\n\n## cedar\n\n`-csv` data\n\n## cedar-serve\n\n`-addr` listen\n"
	fs := flag.NewFlagSet("cedar-serve", flag.ContinueOnError)
	fs.String("addr", "", "")
	fs.String("csv", "", "")
	missing, err := MissingFlags(doc, "cedar-serve", fs)
	if err != nil {
		t.Fatal(err)
	}
	// -csv is documented, but only in the cedar section: it must still count
	// as missing for cedar-serve.
	if len(missing) != 1 || missing[0] != "csv" {
		t.Errorf("missing = %v, want [csv]", missing)
	}
	if _, err := MissingFlags(doc, "cedar-bench", fs); err == nil {
		t.Error("expected an error for a binary without a section")
	}
}
