package route

import (
	"testing"

	"repro/internal/sqldb"
)

// twinDBs builds two databases whose tables are structurally identical —
// every surface scores the same, so every sentence produces a tie the seeded
// pick must break deterministically.
func twinDBs() (*sqldb.Database, *sqldb.Database) {
	mk := func(name string) *sqldb.Database {
		db := sqldb.NewDatabase(name)
		t := sqldb.NewTable("widgets", "widget", "mass")
		t.MustAppendRow(sqldb.Text("anvil"), sqldb.Int(10))
		t.MustAppendRow(sqldb.Text("mallet"), sqldb.Int(2))
		db.AddTable(t)
		return db
	}
	return mk("alpha"), mk("beta")
}

// distinctDBs builds two databases with disjoint vocabulary for
// unambiguous-routing tests.
func distinctDBs() (*sqldb.Database, *sqldb.Database) {
	a := sqldb.NewDatabase("aviation")
	at := sqldb.NewTable("flights", "airline", "fatal_accidents")
	at.MustAppendRow(sqldb.Text("Aeroflot"), sqldb.Int(76))
	at.MustAppendRow(sqldb.Text("Qantas"), sqldb.Int(0))
	a.AddTable(at)

	b := sqldb.NewDatabase("cinema")
	bt := sqldb.NewTable("movies", "title", "box_office")
	bt.MustAppendRow(sqldb.Text("Heat"), sqldb.Int(187))
	bt.MustAppendRow(sqldb.Text("Arrival"), sqldb.Int(203))
	b.AddTable(bt)
	return a, b
}

func TestNewCatalogOrderAndLookup(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b, nil)
	if cat.Len() != 2 {
		t.Fatalf("len = %d, want 2", cat.Len())
	}
	if got := cat.Entries()[0].Name(); got != "aviation/flights" {
		t.Errorf("first entry %q", got)
	}
	if cat.Entry("cinema/movies") == nil || cat.Entry("nope/nope") != nil {
		t.Errorf("byName lookup broken")
	}
}

func TestScoreFavorsMatchingVocabulary(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	cases := []struct {
		sentence string
		want     string
	}{
		{"The fatal accidents of Aeroflot was 76.", "aviation/flights"},
		{"The box office of Arrival was 203.", "cinema/movies"},
	}
	for _, tc := range cases {
		scores := cat.Score(tc.sentence)
		if len(scores) != 2 {
			t.Fatalf("got %d scores", len(scores))
		}
		if scores[0].Entry.Name() != tc.want {
			t.Errorf("%q routed to %s (%.3f) over %s (%.3f)",
				tc.sentence, scores[0].Entry.Name(), scores[0].Value, scores[1].Entry.Name(), scores[1].Value)
		}
		if scores[0].Value < scores[1].Value {
			t.Errorf("scores not sorted descending")
		}
	}
}

func TestScoreEntityBonusOutweighsText(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	scores := cat.Score("Qantas was 0.")
	if scores[0].Entry.Name() != "aviation/flights" {
		t.Fatalf("entity value failed to pull the sentence home: %s", scores[0].Entry.Name())
	}
}

func TestBindDeterministicAcrossRebuilds(t *testing.T) {
	sub := SubClaim{Sentence: "The mass of anvil was 10.", Value: "10"}
	a1, b1 := twinDBs()
	a2, b2 := twinDBs()
	e1, s1, tied1 := NewCatalog(a1, b1).Bind(42, 0, "doc-1", 0, 0, sub)
	e2, s2, tied2 := NewCatalog(a2, b2).Bind(42, 0, "doc-1", 0, 0, sub)
	if e1 == nil || e2 == nil {
		t.Fatal("no binding")
	}
	if e1.Name() != e2.Name() || s1 != s2 || tied1 != tied2 {
		t.Fatalf("binding differs across rebuilds: %s vs %s", e1.Name(), e2.Name())
	}
	if !tied1 {
		t.Error("twin catalogs must tie")
	}
}

func TestBindTieBreakSpreadsByIdentity(t *testing.T) {
	a, b := twinDBs()
	cat := NewCatalog(a, b)
	sub := SubClaim{Sentence: "The mass of anvil was 10.", Value: "10"}
	picks := make(map[string]bool)
	for i := 0; i < 16; i++ {
		e, _, _ := cat.Bind(42, 0, "doc-1", i, 0, sub)
		picks[e.Name()] = true
	}
	if len(picks) < 2 {
		t.Error("tie-break never varied across 16 distinct claim identities")
	}
}

func TestBindEmptyCatalog(t *testing.T) {
	e, _, _ := NewCatalog().Bind(1, 0, "d", 0, 0, SubClaim{Sentence: "x"})
	if e != nil {
		t.Fatal("empty catalog produced a binding")
	}
}

func TestBindTopKClamp(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	sub := SubClaim{Sentence: "The box office of Heat was 187.", Value: "187"}
	for _, k := range []int{-1, 0, 1, 2, 99} {
		e, _, _ := cat.Bind(7, k, "d", 0, 0, sub)
		if e == nil {
			t.Fatalf("topK=%d produced no binding", k)
		}
		if k == 1 && e.Name() != "cinema/movies" {
			t.Errorf("topK=1 must pick the argmax, got %s", e.Name())
		}
	}
}

// FuzzRouteScore checks scoring and binding invariants on arbitrary
// sentences against a catalog that includes tied twin tables: the full
// ranking is a deterministic total order, and Bind always returns a catalog
// entry regardless of input.
func FuzzRouteScore(f *testing.F) {
	f.Add("The mass of anvil was 10.", int64(1))
	f.Add("The fatal accidents of Aeroflot was 76.", int64(42))
	f.Add("", int64(0))
	f.Add("unroutable gibberish zzz qqq", int64(-7))
	f.Add("anvil mallet widgets flights movies", int64(9e15))
	a, b := twinDBs()
	c, d := distinctDBs()
	cat := NewCatalog(a, b, c, d)
	f.Fuzz(func(t *testing.T, sentence string, seed int64) {
		s1 := cat.Score(sentence)
		s2 := cat.Score(sentence)
		if len(s1) != cat.Len() || len(s2) != cat.Len() {
			t.Fatalf("score count %d/%d, want %d", len(s1), len(s2), cat.Len())
		}
		for i := range s1 {
			if s1[i].Entry != s2[i].Entry || s1[i].Value != s2[i].Value {
				t.Fatalf("non-deterministic ranking at %d", i)
			}
			if i > 0 && s1[i-1].Value < s1[i].Value {
				t.Fatalf("ranking not sorted at %d", i)
			}
			if i > 0 && s1[i-1].Value == s1[i].Value && s1[i-1].Entry.Name() >= s1[i].Entry.Name() {
				t.Fatalf("tied ranking not name-ordered at %d", i)
			}
		}
		sub := SubClaim{Sentence: sentence}
		e1, v1, tied1 := cat.Bind(seed, 0, "fuzz", 0, 0, sub)
		e2, v2, tied2 := cat.Bind(seed, 0, "fuzz", 0, 0, sub)
		if e1 == nil || e1 != e2 || v1 != v2 || tied1 != tied2 {
			t.Fatalf("non-deterministic bind")
		}
		if cat.Entry(e1.Name()) != e1 {
			t.Fatalf("bind returned a foreign entry %q", e1.Name())
		}
	})
}
