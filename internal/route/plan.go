package route

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/trace"
)

// UnitID derives the document ID of one routed sub-claim. It is
// content-addressed — a hash of the routed entry and the sub-claim text —
// so the library path, a serving replica, and a sharding coordinator all
// derive the same identity for the same routed sub-claim, which is what
// makes verdicts (seeded per doc ID) and verdict memos bit-identical across
// topologies.
func UnitID(entryName, sentence, value, context string) string {
	h := sha256.New()
	for _, s := range []string{entryName, sentence, value, context} {
		var n [8]byte
		copy(n[:], fmt.Sprintf("%08x", len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	return "route:" + entryName + ":" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Unit is one routed sub-claim: a synthetic single-claim document bound to
// the routed entry's database.
type Unit struct {
	Doc   *claim.Document
	Entry *Entry
	Sub   SubClaim
	Score float64
	Tied  bool
}

// Routed records the decomposition of one compound claim.
type Routed struct {
	Doc   *claim.Document // the original document
	Index int             // claim index within Doc
	Claim *claim.Claim
	Units []*Unit
}

// Plan is the routed expansion of a document set. Expanded holds what the
// verification pipeline should actually run: documents without compound
// claims pass through as the very same pointers (the single-database
// degenerate case is byte-identical to not routing at all), documents with
// compound claims are replaced by a copy stripped of them, and every routed
// sub-claim appears as a synthetic single-claim document. Identical
// sub-claims routed to the same entry are deduplicated — they would verify
// identically anyway, and duplicate document IDs would make trace sequence
// numbers scheduling-dependent — but every routing decision still books its
// fee.
type Plan struct {
	Original []*claim.Document
	Expanded []*claim.Document
	Routed   []*Routed
	// SubClaims counts routing decisions (fee-bearing), including ones that
	// reused a deduplicated unit.
	SubClaims int
	// Fee is the total routing cost: fee × SubClaims.
	Fee float64
}

// PlanDocuments decomposes and routes every compound claim of docs against
// the catalog. It never mutates docs. A claim whose decomposition fails, or
// a catalog with no entries, leaves the claim untouched on its home
// database.
func PlanDocuments(docs []*claim.Document, cat *Catalog, opts Options) *Plan {
	p := &Plan{Original: docs}
	units := make(map[string]*Unit)
	for _, doc := range docs {
		p.planDoc(doc, cat, opts, units)
	}
	return p
}

// planDoc expands one document into p.
func (p *Plan) planDoc(doc *claim.Document, cat *Catalog, opts Options, units map[string]*Unit) {
	type expansion struct {
		index int
		units []*Unit
	}
	var expansions []expansion
	if cat != nil && cat.Len() > 0 {
		for i, c := range doc.Claims {
			subs := Decompose(c.Sentence, c.Value, c.Context)
			if len(subs) < 2 {
				continue
			}
			routed := p.routeSubs(doc, i, subs, cat, opts, units)
			if routed == nil {
				continue
			}
			expansions = append(expansions, expansion{index: i, units: routed})
		}
	}
	if len(expansions) == 0 {
		p.Expanded = append(p.Expanded, doc)
		return
	}
	compound := make(map[int][]*Unit, len(expansions))
	for _, e := range expansions {
		compound[e.index] = e.units
	}
	reduced := *doc
	reduced.Claims = nil
	for i, c := range doc.Claims {
		us, ok := compound[i]
		if !ok {
			reduced.Claims = append(reduced.Claims, c)
			continue
		}
		p.Routed = append(p.Routed, &Routed{Doc: doc, Index: i, Claim: c, Units: us})
	}
	if len(reduced.Claims) > 0 {
		p.Expanded = append(p.Expanded, &reduced)
	}
	for _, e := range expansions {
		for _, u := range e.units {
			if u.Doc != nil && !containsDoc(p.Expanded, u.Doc) {
				p.Expanded = append(p.Expanded, u.Doc)
			}
		}
	}
}

// routeSubs binds every sub-claim of one compound claim, reusing
// already-planned units by content identity. It returns nil when any
// sub-claim fails to materialize (the claim then passes through whole).
func (p *Plan) routeSubs(doc *claim.Document, claimIdx int, subs []SubClaim, cat *Catalog, opts Options, units map[string]*Unit) []*Unit {
	parent := doc.Claims[claimIdx]
	out := make([]*Unit, 0, len(subs))
	for j, sub := range subs {
		entry, score, tied := cat.Bind(opts.Seed, opts.topK(), doc.ID, claimIdx, j, sub)
		if entry == nil {
			return nil
		}
		traceRoute(opts.Tracer, doc.ID, claimIdx, j, cat, sub, entry, score, tied)
		uid := UnitID(entry.Name(), sub.Sentence, sub.Value, sub.Context)
		u, ok := units[uid]
		if !ok {
			uc, err := claim.New(parent.ID+"#"+fmt.Sprint(j+1), sub.Sentence, sub.Value, sub.Context)
			if err != nil {
				return nil
			}
			u = &Unit{
				Doc: &claim.Document{
					ID:     uid,
					Title:  fmt.Sprintf("Routed sub-claim of %s", doc.ID),
					Domain: "route",
					Data:   entry.DB,
					Claims: []*claim.Claim{uc},
				},
				Entry: entry, Sub: sub, Score: score, Tied: tied,
			}
			units[uid] = u
		}
		out = append(out, u)
	}
	// Fees book only for fully-routed claims: a claim that falls back to
	// passthrough pays nothing.
	p.SubClaims += len(out)
	p.Fee += opts.fee() * float64(len(out))
	return out
}

// traceRoute records the scoring and pick spans of one routing decision
// under the parent claim's identity, with Try = the sub-claim ordinal.
func traceRoute(tr *trace.Tracer, docID string, claimIdx, subIdx int, cat *Catalog, sub SubClaim, entry *Entry, score float64, tied bool) {
	if !tr.Enabled() {
		return
	}
	key := trace.Key{Doc: docID, Claim: claimIdx, Method: "route", Try: subIdx}
	top := cat.Score(sub.Sentence)
	if len(top) > DefaultTopK {
		top = top[:DefaultTopK]
	}
	var detail strings.Builder
	for i, s := range top {
		if i > 0 {
			detail.WriteByte(' ')
		}
		fmt.Fprintf(&detail, "%s=%.3f", s.Entry.Name(), s.Value)
	}
	tr.Record(trace.Span{Key: key, Kind: trace.KindRouteScore, Detail: detail.String()})
	outcome := "picked"
	if tied {
		outcome = "tie-break"
	}
	tr.Record(trace.Span{
		Key: key, Kind: trace.KindRoutePick, Outcome: outcome,
		Detail: fmt.Sprintf("%s score=%.3f", entry.Name(), score),
	})
}

// containsDoc reports whether docs already holds d (pointer identity; unit
// documents are interned per content identity).
func containsDoc(docs []*claim.Document, d *claim.Document) bool {
	for _, x := range docs {
		if x == d {
			return true
		}
	}
	return false
}

// Recombine writes each compound claim's recombined verdict back into the
// original documents. Call it after the expanded documents have been
// verified.
func (p *Plan) Recombine() {
	for _, r := range p.Routed {
		subs := make([]claim.Result, len(r.Units))
		for i, u := range r.Units {
			subs[i] = u.Doc.Claims[0].Result
		}
		res := Combine(subs)
		res.Trace = combineTrace(r)
		r.Claim.Result = res
	}
}

// Combine recombines sub-claim results under AND-semantics: the compound
// claim is verified/correct/executable only when every sub-claim is, costs
// the sum of sub-claim attempts, and fails (Method "failed", first failure
// propagated) when any sub-claim's verification died on transport — a
// partially-verified conjunction carries no semantic verdict, exactly like
// a partially-verified claim (metrics tallies it as Failed, outside the
// confusion matrix).
func Combine(subs []claim.Result) claim.Result {
	if len(subs) == 0 {
		return claim.Result{}
	}
	out := claim.Result{Verified: true, Correct: true, Executable: true}
	methods := make([]string, 0, len(subs))
	var queries []string
	failed := false
	for _, r := range subs {
		out.Attempts += r.Attempts
		out.Verified = out.Verified && r.Verified
		out.Correct = out.Correct && r.Correct
		out.Executable = out.Executable && r.Executable
		if r.Query != "" {
			queries = append(queries, r.Query)
		}
		methods = append(methods, r.Method)
		if r.Method == claim.MethodFailed && !failed {
			failed = true
			out.Failure = r.Failure
		}
	}
	out.Query = strings.Join(queries, "; ")
	if failed {
		out.Method = claim.MethodFailed
	} else {
		out.Method = "route(" + strings.Join(methods, ",") + ")"
	}
	return out
}

// combineTrace renders the routing transcript of one recombined claim.
func combineTrace(r *Routed) string {
	var b strings.Builder
	fmt.Fprintf(&b, "routed %d sub-claims\n", len(r.Units))
	for i, u := range r.Units {
		res := u.Doc.Claims[0].Result
		fmt.Fprintf(&b, "sub %d/%d -> %s (score %.3f): %s [%s verified=%t correct=%t]\n",
			i+1, len(r.Units), u.Entry.Name(), u.Score, u.Sub.Sentence, res.Method, res.Verified, res.Correct)
	}
	return b.String()
}
