package route

import (
	"strings"
	"testing"

	"repro/internal/claim"
	"repro/internal/trace"
)

func mustClaim(t *testing.T, id, sentence, value string) *claim.Claim {
	t.Helper()
	c, err := claim.New(id, sentence, value, "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUnitIDStableAndDiscriminating(t *testing.T) {
	a := UnitID("db/t", "S.", "1", "")
	if a != UnitID("db/t", "S.", "1", "") {
		t.Fatal("UnitID not stable")
	}
	if !strings.HasPrefix(a, "route:db/t:") {
		t.Fatalf("UnitID %q lacks the route: prefix", a)
	}
	distinct := map[string]bool{
		a:                              true,
		UnitID("db/u", "S.", "1", ""):  true,
		UnitID("db/t", "S!", "1", ""):  true,
		UnitID("db/t", "S.", "2", ""):  true,
		UnitID("db/t", "S.", "1", "c"): true,
		// Length-prefix injectivity: shifting a byte across the field
		// boundary must change the ID.
		UnitID("db/tS", ".", "1", ""): true,
	}
	if len(distinct) != 6 {
		t.Fatalf("UnitID collision: %d distinct of 6", len(distinct))
	}
}

func TestPlanDocumentsPassthrough(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	doc := &claim.Document{ID: "d1", Data: a, Claims: []*claim.Claim{
		mustClaim(t, "c1", "The fatal accidents of Aeroflot was 76.", "76"),
	}}
	tr := trace.New()
	p := PlanDocuments([]*claim.Document{doc}, cat, Options{Seed: 1, Tracer: tr})
	if len(p.Expanded) != 1 || p.Expanded[0] != doc {
		t.Fatal("simple doc must pass through as the same pointer")
	}
	if p.SubClaims != 0 || p.Fee != 0 {
		t.Fatalf("passthrough booked fees: %d sub-claims, %v", p.SubClaims, p.Fee)
	}
	if spans := tr.Spans(); len(spans) != 0 {
		t.Fatalf("passthrough recorded %d route spans", len(spans))
	}
}

func TestPlanDocumentsNilCatalogPassthrough(t *testing.T) {
	doc := &claim.Document{ID: "d1", Claims: []*claim.Claim{
		mustClaim(t, "c1", "A was 1, and b was 2.", "1"),
	}}
	for _, cat := range []*Catalog{nil, NewCatalog()} {
		p := PlanDocuments([]*claim.Document{doc}, cat, Options{})
		if len(p.Expanded) != 1 || p.Expanded[0] != doc || p.SubClaims != 0 {
			t.Fatal("nil/empty catalog must leave every doc untouched")
		}
	}
}

func TestPlanDocumentsExpansion(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	compound := "The fatal accidents of Aeroflot was 76, and the box office of Heat was 187."
	doc := &claim.Document{ID: "d1", Data: a, Claims: []*claim.Claim{
		mustClaim(t, "c1", "The fatal accidents of Qantas was 0.", "0"),
		mustClaim(t, "c2", compound, "76"),
	}}
	tr := trace.New()
	p := PlanDocuments([]*claim.Document{doc}, cat, Options{Seed: 1, Tracer: tr})
	// Reduced doc (simple claim only) + 2 unit docs.
	if len(p.Expanded) != 3 {
		t.Fatalf("expanded into %d docs, want 3", len(p.Expanded))
	}
	if p.Expanded[0] == doc {
		t.Fatal("reduced doc must be a copy, not the original")
	}
	if len(p.Expanded[0].Claims) != 1 || p.Expanded[0].Claims[0].ID != "c1" {
		t.Fatal("reduced doc must keep exactly the simple claim")
	}
	if len(doc.Claims) != 2 {
		t.Fatal("planning mutated the original document")
	}
	if p.SubClaims != 2 || p.Fee != 2*DefaultFee {
		t.Fatalf("booked %d sub-claims fee %v", p.SubClaims, p.Fee)
	}
	if len(p.Routed) != 1 || p.Routed[0].Claim.ID != "c2" {
		t.Fatal("routed record missing")
	}
	units := p.Routed[0].Units
	if units[0].Entry.Name() != "aviation/flights" || units[1].Entry.Name() != "cinema/movies" {
		t.Fatalf("misrouted: %s, %s", units[0].Entry.Name(), units[1].Entry.Name())
	}
	for _, u := range units {
		if u.Doc.Domain != "route" || len(u.Doc.Claims) != 1 {
			t.Fatalf("malformed unit doc %+v", u.Doc)
		}
		if u.Doc.Data != u.Entry.DB {
			t.Fatal("unit doc not bound to the routed database")
		}
	}
	var scoreSpans, pickSpans int
	for _, s := range tr.Spans() {
		switch s.Kind {
		case trace.KindRouteScore:
			scoreSpans++
		case trace.KindRoutePick:
			pickSpans++
		}
	}
	if scoreSpans != 2 || pickSpans != 2 {
		t.Fatalf("got %d score / %d pick spans, want 2/2", scoreSpans, pickSpans)
	}
}

func TestPlanDocumentsDedupesUnits(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	compound := "The fatal accidents of Aeroflot was 76, and the box office of Heat was 187."
	d1 := &claim.Document{ID: "d1", Data: a, Claims: []*claim.Claim{mustClaim(t, "c1", compound, "76")}}
	d2 := &claim.Document{ID: "d2", Data: a, Claims: []*claim.Claim{mustClaim(t, "c1", compound, "76")}}
	p := PlanDocuments([]*claim.Document{d1, d2}, cat, Options{Seed: 1})
	// The two compound claims share both unit docs: expansion is 2 docs, not 4.
	if len(p.Expanded) != 2 {
		t.Fatalf("expanded into %d docs, want 2 deduplicated units", len(p.Expanded))
	}
	// Both routing decisions still book fees.
	if p.SubClaims != 4 || p.Fee != 4*DefaultFee {
		t.Fatalf("booked %d sub-claims fee %v, want 4 and %v", p.SubClaims, p.Fee, 4*DefaultFee)
	}
	if p.Routed[0].Units[0] != p.Routed[1].Units[0] {
		t.Fatal("identical sub-claims must intern to the same unit")
	}
}

func TestRecombineWritesParentVerdicts(t *testing.T) {
	a, b := distinctDBs()
	cat := NewCatalog(a, b)
	compound := "The fatal accidents of Aeroflot was 76, and the box office of Heat was 187."
	doc := &claim.Document{ID: "d1", Data: a, Claims: []*claim.Claim{mustClaim(t, "c1", compound, "76")}}
	p := PlanDocuments([]*claim.Document{doc}, cat, Options{Seed: 1})
	units := p.Routed[0].Units
	units[0].Doc.Claims[0].Result = claim.Result{
		Verified: true, Correct: true, Executable: true, Attempts: 1, Method: "direct", Query: "SELECT 1",
	}
	units[1].Doc.Claims[0].Result = claim.Result{
		Verified: true, Correct: false, Executable: true, Attempts: 2, Method: "agent", Query: "SELECT 2",
	}
	p.Recombine()
	res := doc.Claims[0].Result
	if !res.Verified || res.Correct {
		t.Fatalf("AND-recombination wrong: %+v", res)
	}
	if res.Attempts != 3 || res.Method != "route(direct,agent)" || res.Query != "SELECT 1; SELECT 2" {
		t.Fatalf("recombined fields wrong: %+v", res)
	}
	if !strings.Contains(res.Trace, "routed 2 sub-claims") {
		t.Fatalf("trace missing routing transcript: %q", res.Trace)
	}
}

func TestCombineTable(t *testing.T) {
	ok := claim.Result{Verified: true, Correct: true, Executable: true, Attempts: 1, Method: "direct"}
	wrong := claim.Result{Verified: true, Correct: false, Executable: true, Attempts: 1, Method: "direct"}
	failed := claim.Result{Method: claim.MethodFailed, Failure: "transport: boom", Attempts: 3}
	cases := []struct {
		name string
		subs []claim.Result
		want func(t *testing.T, r claim.Result)
	}{
		{"empty", nil, func(t *testing.T, r claim.Result) {
			if r.Verified || r.Method != "" {
				t.Fatalf("empty combine %+v", r)
			}
		}},
		{"all ok", []claim.Result{ok, ok}, func(t *testing.T, r claim.Result) {
			if !r.Verified || !r.Correct || r.Attempts != 2 || r.Method != "route(direct,direct)" {
				t.Fatalf("%+v", r)
			}
		}},
		{"one wrong", []claim.Result{ok, wrong}, func(t *testing.T, r claim.Result) {
			if !r.Verified || r.Correct {
				t.Fatalf("%+v", r)
			}
		}},
		{"failure propagates", []claim.Result{ok, failed, wrong}, func(t *testing.T, r claim.Result) {
			if r.Method != claim.MethodFailed || r.Failure != "transport: boom" {
				t.Fatalf("%+v", r)
			}
			if r.Attempts != 5 {
				t.Fatalf("attempts %d", r.Attempts)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.want(t, Combine(tc.subs)) })
	}
}
