package route

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/agent"
	"repro/internal/embed"
	"repro/internal/nl"
	"repro/internal/sqldb"
)

// Scoring constants. Cosine similarity over short phrases is noisy, so two
// exact-containment signals dominate it: a surface phrase of the table
// appearing verbatim in the sentence, and a cell value of the table (an
// entity name above all) appearing verbatim in the sentence.
const (
	// phraseBonus is added when a normalized surface phrase (>= 4 chars) is
	// a substring of the normalized sentence.
	phraseBonus = 0.35
	// entityValueBonus is added when a value of the table's entity column
	// occurs in the sentence on word boundaries.
	entityValueBonus = 0.5
	// textValueBonus is the weaker form for values of non-entity text
	// columns (e.g. a director name in a movies table).
	textValueBonus = 0.25
	// maxValuesPerColumn bounds how many distinct cell values one column
	// contributes to the containment index.
	maxValuesPerColumn = 256
)

// surface is one lexical handle on a table: its name, its lexicon noun, or a
// column phrase — pre-embedded so scoring a sentence is one cosine per
// surface.
type surface struct {
	text string
	norm string
	vec  embed.Vector
}

// Entry is one routable target: a (database, table) pair with its
// pre-computed scoring surfaces.
type Entry struct {
	DB    *sqldb.Database
	Table string

	name       string
	surfaces   []surface
	entityVals []string // normalized entity-column values
	textVals   []string // normalized values of other text columns
}

// Name returns the canonical entry label "db/table" used in gold routing
// labels, trace spans, and unit document IDs.
func (e *Entry) Name() string { return e.name }

// Catalog indexes every registered (database, table) pair for routing. Build
// it once with NewCatalog; scoring never mutates it, so a Catalog is safe
// for concurrent use.
type Catalog struct {
	entries []*Entry
	byName  map[string]*Entry
}

// NewCatalog indexes the tables of the given databases, in the given
// database order and each database's own table order (deterministic for a
// deterministic build sequence). Databases registered later win name
// collisions on the "db/table" label, matching sqldb's replace semantics.
func NewCatalog(dbs ...*sqldb.Database) *Catalog {
	c := &Catalog{byName: make(map[string]*Entry)}
	lex := nl.DefaultLexicon()
	for _, db := range dbs {
		if db == nil {
			continue
		}
		schema := nl.SchemaFromDatabase(db)
		for _, t := range db.Tables() {
			e := buildEntry(db, t, schema.Table(t.Name), lex)
			if prev, ok := c.byName[e.name]; ok {
				*prev = *e
				continue
			}
			c.entries = append(c.entries, e)
			c.byName[e.name] = e
		}
	}
	return c
}

// buildEntry computes one table's surfaces and containment values.
func buildEntry(db *sqldb.Database, t *sqldb.Table, st *nl.SchemaTable, lex *nl.Lexicon) *Entry {
	e := &Entry{DB: db, Table: t.Name, name: db.Name + "/" + t.Name}
	seen := make(map[string]bool)
	add := func(text string) {
		norm := embed.Normalize(text)
		if norm == "" || seen[norm] {
			return
		}
		seen[norm] = true
		e.surfaces = append(e.surfaces, surface{text: text, norm: norm, vec: embed.Embed(text)})
	}
	add(strings.ReplaceAll(t.Name, "_", " "))
	add(lex.TableNoun(t.Name))
	for _, col := range t.Columns {
		add(strings.ReplaceAll(col.Name, "_", " "))
		add(lex.ColumnPhrase(col.Name))
		if short := lex.ShortPhrase(col.Name); short != "" {
			add(short)
		}
	}

	entityCol := ""
	if st != nil {
		entityCol = nl.EntityColumnOf(st)
	}
	for i, col := range t.Columns {
		vals := collectTextValues(t, i)
		if strings.EqualFold(col.Name, entityCol) {
			e.entityVals = vals
		} else {
			e.textVals = append(e.textVals, vals...)
		}
	}
	return e
}

// collectTextValues gathers the distinct normalized text values of column i,
// in first-appearance order, capped at maxValuesPerColumn.
func collectTextValues(t *sqldb.Table, i int) []string {
	var out []string
	seen := make(map[string]bool)
	for _, row := range t.Rows {
		if i >= len(row) || row[i].Kind() != sqldb.KindText {
			continue
		}
		norm := embed.Normalize(row[i].Text())
		if len(norm) < 3 || seen[norm] {
			continue
		}
		seen[norm] = true
		out = append(out, norm)
		if len(out) >= maxValuesPerColumn {
			break
		}
	}
	return out
}

// Len returns the number of routable entries.
func (c *Catalog) Len() int { return len(c.entries) }

// Entries returns the catalog's entries in registration order.
func (c *Catalog) Entries() []*Entry { return c.entries }

// Entry returns the entry labeled "db/table", or nil.
func (c *Catalog) Entry(name string) *Entry { return c.byName[name] }

// Score is one entry's relevance to a sentence.
type Score struct {
	Entry *Entry
	Value float64
}

// Score scores every entry against the sentence and returns the full
// ranking, sorted by (score desc, name asc) — a total, deterministic order.
func (c *Catalog) Score(sentence string) []Score {
	if len(c.entries) == 0 {
		return nil
	}
	vec := embed.Embed(sentence)
	norm := " " + embed.Normalize(sentence) + " "
	out := make([]Score, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, Score{Entry: e, Value: scoreEntry(e, vec, norm)})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Entry.name < out[j].Entry.name
	})
	return out
}

// scoreEntry computes max-over-surfaces cosine with containment bonuses.
// padded is the normalized sentence wrapped in single spaces so value
// containment matches on word boundaries only.
func scoreEntry(e *Entry, vec embed.Vector, padded string) float64 {
	best := 0.0
	for _, s := range e.surfaces {
		cos := embed.Cosine(vec, s.vec)
		if len(s.norm) >= 4 && strings.Contains(padded, s.norm) {
			cos += phraseBonus
		}
		if cos > best {
			best = cos
		}
	}
	bonus := 0.0
	for _, v := range e.entityVals {
		if strings.Contains(padded, " "+v+" ") {
			bonus = entityValueBonus
			break
		}
	}
	if bonus == 0 {
		for _, v := range e.textVals {
			if strings.Contains(padded, " "+v+" ") {
				bonus = textValueBonus
				break
			}
		}
	}
	return best + bonus
}

// Bind scores a sub-claim, keeps the top-k candidates, and lets the routing
// stage pick one with seeded tie-breaking. The (docID, claimIdx, subIdx)
// triple is the sub-claim's routing identity: any planner — library,
// replica, coordinator — that uses the same seed binds it identically. It
// returns the chosen entry, its score, and whether the pick broke a tie;
// the entry is nil only for an empty catalog.
func (c *Catalog) Bind(seed int64, topK int, docID string, claimIdx, subIdx int, sub SubClaim) (*Entry, float64, bool) {
	scores := c.Score(sub.Sentence)
	if len(scores) == 0 {
		return nil, 0, false
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	if topK > len(scores) {
		topK = len(scores)
	}
	cand := scores[:topK]
	names := make([]string, len(cand))
	vals := make([]float64, len(cand))
	for i, s := range cand {
		names[i] = s.Entry.name
		vals[i] = s.Value
	}
	idx, tied := agent.RoutePick(seed, bindKey(docID, claimIdx, subIdx), names, vals)
	return cand[idx].Entry, cand[idx].Value, tied
}

// bindKey is the routing identity fed into the seeded tie-break.
func bindKey(docID string, claimIdx, subIdx int) string {
	return fmt.Sprintf("%s\x00%d\x00%d", docID, claimIdx, subIdx)
}
