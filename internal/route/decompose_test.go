package route

import (
	"strings"
	"testing"

	"repro/internal/textutil"
)

func TestDecomposeSimplePassthrough(t *testing.T) {
	subs := Decompose("The average delay of Delta was 12.", "12", "ctx")
	if len(subs) != 1 {
		t.Fatalf("simple claim decomposed into %d parts", len(subs))
	}
	if subs[0].Sentence != "The average delay of Delta was 12." || subs[0].Value != "12" || subs[0].Context != "ctx" {
		t.Fatalf("passthrough altered the claim: %+v", subs[0])
	}
}

func TestDecomposeConjunction(t *testing.T) {
	sentence := "The average delay of Delta was 12, and the total beer servings across countries was 350."
	subs := Decompose(sentence, "12", "")
	if len(subs) != 2 {
		t.Fatalf("got %d parts, want 2", len(subs))
	}
	want := []SubClaim{
		{Sentence: "The average delay of Delta was 12.", Value: "12"},
		{Sentence: "The total beer servings across countries was 350.", Value: "350"},
	}
	for i, w := range want {
		if subs[i] != w {
			t.Errorf("part %d = %+v, want %+v", i, subs[i], w)
		}
	}
}

func TestDecomposeThreeParts(t *testing.T) {
	sentence := "The minimum points was 4, while the maximum population was 900, and the average runtime was 120."
	subs := Decompose(sentence, "4", "")
	if len(subs) != 3 {
		t.Fatalf("got %d parts, want 3", len(subs))
	}
	for i, wantVal := range []string{"4", "900", "120"} {
		if subs[i].Value != wantVal {
			t.Errorf("part %d value = %q, want %q", i, subs[i].Value, wantVal)
		}
	}
}

func TestDecomposeBareAndDoesNotSplit(t *testing.T) {
	// Bare " and " occurs inside column phrases and must never split.
	sentence := "The number of incidents between 1985 and 1999 for Aeroflot was 76."
	subs := Decompose(sentence, "76", "")
	if len(subs) != 1 {
		t.Fatalf("bare ' and ' split the sentence into %d parts", len(subs))
	}
}

func TestDecomposeValueCue(t *testing.T) {
	sentence := "Brazil recorded the highest beer servings, and the average wine servings was 60."
	subs := Decompose(sentence, "Brazil", "")
	if len(subs) != 2 {
		t.Fatalf("got %d parts, want 2", len(subs))
	}
	if subs[0].Value != "Brazil" {
		t.Errorf("cue conjunct value = %q, want Brazil", subs[0].Value)
	}
	if subs[1].Value != "60" {
		t.Errorf("numeric conjunct value = %q, want 60", subs[1].Value)
	}
}

func TestDecomposePassthroughCases(t *testing.T) {
	cases := []struct {
		name            string
		sentence, value string
	}{
		{"no value in conjunct", "Something holds, and nothing numeric here.", ""},
		{"empty part", "The count was 5, and , and the sum was 8.", "5"},
		{"too many parts", "A was 1, and b was 2, and c was 3, and d was 4, and e was 5.", "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			subs := Decompose(tc.sentence, tc.value, "")
			if len(subs) != 1 || subs[0].Sentence != tc.sentence {
				t.Fatalf("expected passthrough, got %+v", subs)
			}
		})
	}
}

// FuzzDecompose checks the decomposer's total/pure/deterministic contract on
// arbitrary input: it never panics, never returns zero or more than
// maxSubClaims parts, returns the input untouched in the passthrough case,
// locates every extracted value in its conjunct, and is referentially
// transparent.
func FuzzDecompose(f *testing.F) {
	f.Add("The average delay of Delta was 12, and the total was 350.", "12", "")
	f.Add("A was 1, and b was 2, and c was 3, and d was 4, and e was 5.", "1", "x")
	f.Add(", and , and ", "", "")
	f.Add("No digits here, and none here either.", "", "ctx")
	f.Add("Brazil recorded the highest beer servings, while X was 9.", "Brazil", "")
	f.Add("Trailing connective, and ", "7", "")
	f.Add(", and leading connective was 3.", "3", "")
	f.Add("Unicode éclair was 3, whereas über count was 4.", "3", "")
	f.Fuzz(func(t *testing.T, sentence, value, context string) {
		subs := Decompose(sentence, value, context)
		if len(subs) < 1 || len(subs) > maxSubClaims {
			t.Fatalf("got %d parts", len(subs))
		}
		again := Decompose(sentence, value, context)
		if len(again) != len(subs) {
			t.Fatalf("non-deterministic: %d then %d parts", len(subs), len(again))
		}
		for i := range subs {
			if subs[i] != again[i] {
				t.Fatalf("non-deterministic part %d: %+v vs %+v", i, subs[i], again[i])
			}
		}
		if len(subs) == 1 {
			if subs[0].Sentence != sentence || subs[0].Value != value || subs[0].Context != context {
				t.Fatalf("passthrough altered the claim: %+v", subs[0])
			}
			return
		}
		for i, sub := range subs {
			if sub.Context != context {
				t.Errorf("part %d lost context", i)
			}
			if !strings.HasSuffix(sub.Sentence, ".") {
				t.Errorf("part %d not period-terminated: %q", i, sub.Sentence)
			}
			if _, ok := textutil.FindValueSpan(sub.Sentence, sub.Value); !ok {
				t.Errorf("part %d value %q not locatable in %q", i, sub.Value, sub.Sentence)
			}
		}
	})
}
