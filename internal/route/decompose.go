package route

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/textutil"
)

// SubClaim is one atomic statement extracted from a compound claim. Sentence
// is a complete, capitalized, period-terminated English sentence; Value is
// the claimed value locatable in Sentence (textutil.FindValueSpan); Context
// is inherited from the parent claim.
type SubClaim struct {
	Sentence string
	Value    string
	Context  string
}

// connectives are the top-level conjunctions Decompose splits on. Only
// comma-prefixed forms qualify: a bare " and " occurs inside column phrases
// ("incidents between 1985 and 1999") and must not split.
var connectives = []string{", and ", ", while ", ", whereas "}

// maxSubClaims bounds decomposition; longer conjunction chains are treated
// as non-compound (verified whole against the claim's home database).
const maxSubClaims = 4

// valueCues are sentence fragments whose prefix is the claimed value in the
// nl render templates (ArgMax/ArgMin/Mode put the value first).
var valueCues = []string{" recorded the highest ", " recorded the lowest ", " is the most common "}

// Decompose splits a compound claim into its sub-claims. It is total,
// deterministic, and pure: for a sentence that is not a well-formed
// conjunction of extractable atomic statements it returns the input as a
// single SubClaim (the passthrough case — callers treat len < 2 as "not
// compound, do not route"). For a well-formed compound it returns one
// SubClaim per conjunct, each with its own extracted value.
//
// Value extraction per conjunct applies the first matching rule:
//  1. the parent claim's value, when locatable in the conjunct;
//  2. the prefix before a value cue (" recorded the highest ", ...);
//  3. the suffix of a trailing "was X." (Min/Max/Diff templates — checked
//     before rule 4 because their column phrases may contain earlier
//     numerals, e.g. "between 1985 and 1999");
//  4. the first numeric token;
//  5. none — the conjunct has no extractable value and the whole claim
//     passes through undecomposed.
func Decompose(sentence, value, context string) []SubClaim {
	passthrough := []SubClaim{{Sentence: sentence, Value: value, Context: context}}
	parts := splitConnectives(strings.TrimSpace(sentence))
	if len(parts) < 2 || len(parts) > maxSubClaims {
		return passthrough
	}
	subs := make([]SubClaim, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return passthrough
		}
		part = capitalize(part)
		if !strings.HasSuffix(part, ".") {
			part += "."
		}
		v, ok := extractValue(part, value)
		if !ok {
			return passthrough
		}
		if _, ok := textutil.FindValueSpan(part, v); !ok {
			return passthrough
		}
		subs = append(subs, SubClaim{Sentence: part, Value: v, Context: context})
	}
	return subs
}

// splitConnectives splits s on the earliest top-level connective, repeatedly.
func splitConnectives(s string) []string {
	var parts []string
	for {
		idx, width := -1, 0
		for _, conn := range connectives {
			if i := strings.Index(s, conn); i >= 0 && (idx < 0 || i < idx) {
				idx, width = i, len(conn)
			}
		}
		if idx < 0 {
			return append(parts, s)
		}
		parts = append(parts, s[:idx])
		s = s[idx+width:]
	}
}

// extractValue finds the claimed value of one conjunct (see Decompose).
func extractValue(part, parentValue string) (string, bool) {
	if parentValue != "" {
		if _, ok := textutil.FindValueSpan(part, parentValue); ok {
			return parentValue, true
		}
	}
	for _, cue := range valueCues {
		if i := strings.Index(part, cue); i > 0 {
			if v := strings.TrimSpace(part[:i]); v != "" {
				return v, true
			}
		}
	}
	trimmed := strings.TrimSuffix(part, ".")
	if i := strings.LastIndex(trimmed, " was "); i >= 0 {
		if v := strings.TrimSpace(trimmed[i+len(" was "):]); v != "" && textutil.IsNumeric(v) {
			return v, true
		}
	}
	for _, tok := range strings.Fields(part) {
		t := strings.TrimRight(tok, ".,;:!?")
		if t != "" && textutil.IsNumeric(t) {
			return t, true
		}
	}
	return "", false
}

// capitalize upper-cases the first rune so split conjuncts read as
// standalone sentences.
func capitalize(s string) string {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError || unicode.IsUpper(r) {
		return s
	}
	return string(unicode.ToUpper(r)) + s[size:]
}
