// Package route implements cross-database claim routing (ROADMAP item 4,
// DESIGN.md §16): compound claims — conjunctions joining several atomic
// factual statements, possibly about different databases — are decomposed
// into sub-claims, each sub-claim is scored against every table of a
// registered catalog via embedding similarity over lexical surfaces, an
// agent-style routing stage picks one binding per sub-claim with seeded
// tie-breaking, the sub-claims are verified as ordinary single-claim
// documents against their routed databases, and the sub-verdicts are
// recombined under AND-semantics with failure propagation.
//
// Everything in this package is deterministic: decomposition is a pure
// function of the claim text, catalog scores are pure functions of the
// catalog contents and the sentence, and the routing pick depends only on
// (seed, claim identity, candidate set). The same compound claim therefore
// routes identically whether it is planned inside the cedar library, on a
// serving replica, or at a sharding coordinator — which is what lets the
// routed serving path fan sub-claims out across a shard ring and still merge
// bit-identical verdicts (the `make route` gate).
package route

import "repro/internal/trace"

// DefaultTopK is the number of top-scoring catalog candidates the routing
// stage considers per sub-claim.
const DefaultTopK = 3

// DefaultFee is the priced cost of one routing decision (one sub-claim
// scored and bound), in the same simulated dollars as model fees. Routing
// uses embeddings and the catalog only — far cheaper than a verification
// call — but it is not free, and the DP scheduler prices it (schedule.RouteStage).
const DefaultFee = 0.0001

// DefaultAccuracy is the modeled probability that the routing stage binds a
// sub-claim to the right table — the "wrong-routing risk" the scheduler
// multiplies into a routed schedule's expected accuracy. The routebench
// corpus measures the realized value (≥ 0.9 by the acceptance gate); the
// model is deliberately a little conservative.
const DefaultAccuracy = 0.96

// Options configure planning. The zero value is usable: TopK defaults to
// DefaultTopK and Fee to DefaultFee.
type Options struct {
	// Seed drives the routing stage's tie-breaking; it must match across
	// topologies (library, replica, coordinator) for identical bindings.
	Seed int64
	// TopK bounds the candidate set handed to the routing pick.
	TopK int
	// Fee is booked per sub-claim routing decision; <= 0 means DefaultFee.
	Fee float64
	// Tracer, when non-nil, records route_score/route_pick spans under the
	// parent claim's identity. Both kinds are dropped by
	// trace.ReplayNormalize: the routing transcript is a property of how the
	// claim was planned, not of the verification work.
	Tracer *trace.Tracer
}

func (o Options) topK() int {
	if o.TopK <= 0 {
		return DefaultTopK
	}
	return o.TopK
}

func (o Options) fee() float64 {
	if o.Fee <= 0 {
		return DefaultFee
	}
	return o.Fee
}
