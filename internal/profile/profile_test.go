package profile

import (
	"errors"
	"os"
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/verify"
)

func testSetup(t *testing.T, seed int64) ([]verify.Method, *llm.Ledger, []*claim.Document) {
	t.Helper()
	ledger := llm.NewLedger()
	model35, err := sim.New(llm.ModelGPT35, seed)
	if err != nil {
		t.Fatal(err)
	}
	model4o, err := sim.New(llm.ModelGPT4o, seed)
	if err != nil {
		t.Fatal(err)
	}
	methods := []verify.Method{
		verify.NewOneShot(&llm.Metered{Client: model35, Ledger: ledger}, llm.ModelGPT35, "cheap"),
		verify.NewOneShot(&llm.Metered{Client: model4o, Ledger: ledger}, llm.ModelGPT4o, "strong"),
	}
	docs, err := data.AggChecker(seed)
	if err != nil {
		t.Fatal(err)
	}
	return methods, ledger, docs[:6]
}

func TestRunProducesUsableStats(t *testing.T) {
	methods, ledger, docs := testSetup(t, 9)
	stats, err := Run(methods, docs, ledger, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	byName := map[string]schedule.MethodStats{}
	for _, s := range stats {
		byName[s.Name] = s
		if s.Accuracy <= 0 || s.Accuracy >= 1 {
			t.Errorf("%s accuracy %v outside (0,1)", s.Name, s.Accuracy)
		}
		if s.Cost <= 0 {
			t.Errorf("%s cost %v", s.Name, s.Cost)
		}
		if s.Wall <= 0 {
			t.Errorf("%s wall %v", s.Name, s.Wall)
		}
	}
	if byName["cheap"].Cost >= byName["strong"].Cost {
		t.Errorf("cost ordering: cheap %v vs strong %v", byName["cheap"].Cost, byName["strong"].Cost)
	}
	// The ledger must be left clean for the production run.
	if ledger.TotalCalls() != 0 {
		t.Error("ledger not reset after profiling")
	}
}

func TestRunDoesNotMutateCorpus(t *testing.T) {
	methods, ledger, docs := testSetup(t, 10)
	if _, err := Run(methods, docs, ledger, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		for _, c := range d.Claims {
			if c.Result.Verified || c.Result.Query != "" || c.Result.Attempts != 0 {
				t.Fatalf("profiling mutated claim %s: %+v", c.ID, c.Result)
			}
		}
	}
}

func TestRunMaxClaims(t *testing.T) {
	methods, ledger, docs := testSetup(t, 11)
	stats, err := Run(methods, docs, ledger, Options{MaxClaims: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With only 5 claims the accuracy estimate is a multiple of 1/5
	// (after clamping).
	for _, s := range stats {
		scaled := s.Accuracy * 5
		if s.Accuracy != 0.995 && s.Accuracy != 0.01 && scaled != float64(int(scaled+0.5)) {
			t.Errorf("%s accuracy %v not consistent with 5 claims", s.Name, s.Accuracy)
		}
	}
}

func TestRunErrors(t *testing.T) {
	_, ledger, docs := testSetup(t, 12)
	if _, err := Run(nil, docs, ledger, Options{}); err == nil {
		t.Error("expected error with no methods")
	}
	methods, ledger2, _ := testSetup(t, 13)
	if _, err := Run(methods, nil, ledger2, Options{}); err == nil {
		t.Error("expected error with empty corpus")
	}
}

// failingMethod never verifies; profiling must clamp its accuracy above 0
// so the scheduler stays well-defined.
type failingMethod struct{}

func (failingMethod) Name() string      { return "failing" }
func (failingMethod) ModelName() string { return "none" }
func (failingMethod) Translate(*claim.Claim, *sqldb.Database, verify.Invocation) (string, error) {
	return "", errors.New("nope")
}

func TestRunClampsDegenerateStats(t *testing.T) {
	_, ledger, docs := testSetup(t, 14)
	stats, err := Run([]verify.Method{failingMethod{}}, docs, ledger, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Accuracy != 0.01 {
		t.Errorf("accuracy = %v want clamp 0.01", stats[0].Accuracy)
	}
	if stats[0].Cost <= 0 {
		t.Errorf("cost = %v want positive clamp", stats[0].Cost)
	}
}

func TestSaveLoadStats(t *testing.T) {
	methods, ledger, docs := testSetup(t, 15)
	stats, err := Run(methods, docs, ledger, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/stats.json"
	if err := SaveStats(path, stats); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(stats) {
		t.Fatalf("loaded %d want %d", len(loaded), len(stats))
	}
	for i := range stats {
		if loaded[i] != stats[i] {
			t.Errorf("entry %d: %+v != %+v", i, loaded[i], stats[i])
		}
	}
}

func TestLoadStatsErrors(t *testing.T) {
	if _, err := LoadStats("/nonexistent.json"); err == nil {
		t.Error("expected read error")
	}
	dir := t.TempDir()
	bad := dir + "/bad.json"
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := LoadStats(bad); err == nil {
		t.Error("expected decode error")
	}
	empty := dir + "/empty.json"
	os.WriteFile(empty, []byte("[]"), 0o644)
	if _, err := LoadStats(empty); err == nil {
		t.Error("expected empty error")
	}
	invalid := dir + "/invalid.json"
	os.WriteFile(invalid, []byte(`[{"Name":"","Cost":0,"Accuracy":2}]`), 0o644)
	if _, err := LoadStats(invalid); err == nil {
		t.Error("expected validation error")
	}
}
