// Package profile estimates the per-method success probability and expected
// cost that CEDAR's cost-based scheduler consumes (Section 6.1). Profiling
// runs each verification method over a labeled sample of claims and reads
// token fees off the metered ledger.
package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// SaveStats writes profiling statistics to a JSON file, so profiling (which
// needs labeled data and costs model fees) can run once and be reused
// across verification sessions — and refreshed when models evolve, as
// Section 7.3.3 advises.
func SaveStats(path string, stats []schedule.MethodStats) error {
	raw, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: encode stats: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("profile: write stats: %w", err)
	}
	return nil
}

// LoadStats reads profiling statistics written by SaveStats.
func LoadStats(path string) ([]schedule.MethodStats, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: read stats: %w", err)
	}
	var stats []schedule.MethodStats
	if err := json.Unmarshal(raw, &stats); err != nil {
		return nil, fmt.Errorf("profile: decode stats %s: %w", path, err)
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("profile: %s contains no method statistics", path)
	}
	for _, s := range stats {
		if s.Name == "" || s.Accuracy <= 0 || s.Accuracy > 1 || s.Cost <= 0 {
			return nil, fmt.Errorf("profile: invalid stats entry %+v in %s", s, path)
		}
	}
	return stats, nil
}

// Options configure a profiling run.
type Options struct {
	// Temperature used for profiling attempts (0 matches the first try of
	// the production schedule).
	Temperature float64
	// MaxClaims caps the number of claims profiled per method (0 = all).
	MaxClaims int
}

// Run profiles each method over the documents and returns scheduler stats.
// The ledger must be the one metering the methods' clients; it is reset
// around each method so fees attribute correctly.
func Run(methods []verify.Method, docs []*claim.Document, ledger *llm.Ledger, opts Options) ([]schedule.MethodStats, error) {
	if len(methods) == 0 {
		return nil, fmt.Errorf("profile: no methods")
	}
	var out []schedule.MethodStats
	for _, m := range methods {
		ledger.Reset()
		attempts, successes := 0, 0
		var wall time.Duration
		for _, d := range docs {
			for _, c := range d.Claims {
				if opts.MaxClaims > 0 && attempts >= opts.MaxClaims {
					break
				}
				cc := *c // never mutate the profiling corpus
				attempts++
				if verify.Attempt(m, &cc, d.Data, nil, opts.Temperature) {
					successes++
				}
			}
		}
		if attempts == 0 {
			return nil, fmt.Errorf("profile: empty corpus")
		}
		wall = ledger.TotalWall()
		stats := schedule.MethodStats{
			Name:     m.Name(),
			Cost:     ledger.TotalDollars() / float64(attempts),
			Accuracy: float64(successes) / float64(attempts),
			Wall:     wall / time.Duration(attempts),
		}
		// Guard degenerate estimates so the scheduler stays well-defined:
		// a method that never succeeded still gets epsilon accuracy, and a
		// free method still gets epsilon cost.
		if stats.Accuracy <= 0 {
			stats.Accuracy = 0.01
		}
		if stats.Accuracy >= 1 {
			stats.Accuracy = 0.995
		}
		if stats.Cost <= 0 {
			stats.Cost = 1e-6
		}
		out = append(out, stats)
		ledger.Reset()
	}
	return out, nil
}
