// Package cliutil holds the small pieces of command-line plumbing shared by
// the cedar binaries — repeated-flag collection and CSV database loading —
// so cmd/cedar and cmd/cedar-serve build byte-identical databases (and
// therefore byte-identical verification runs) from the same flags.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sqldb"
)

// CSVList collects repeated -csv flags so multi-table (join) databases can
// be loaded: -csv airlines.csv -csv safety.csv ...
type CSVList []string

// String implements flag.Value.
func (c *CSVList) String() string { return strings.Join(*c, ",") }

// Set implements flag.Value, appending one path per occurrence.
func (c *CSVList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

// URLList collects repeated -replicas flags (replica base URLs for the
// cedar-serve coordinator): -replicas http://r1:8080 -replicas http://r2:8080
// Comma-separated values in one occurrence are split, so both
// "-replicas a,b" and "-replicas a -replicas b" work.
type URLList []string

// String implements flag.Value.
func (u *URLList) String() string { return strings.Join(*u, ",") }

// Set implements flag.Value, appending the URLs of one occurrence.
func (u *URLList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(part), "/"))
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			return fmt.Errorf("replica URL %q must include a scheme (http://host:port)", part)
		}
		*u = append(*u, part)
	}
	return nil
}

// TableName derives a table name from a CSV path: the file base name with
// the extension stripped.
func TableName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

// LoadDatabase builds the relational database the claims verify against:
// one table per CSV path. tableName overrides the single-CSV table name
// (and errors with multiple paths, which always name tables by file). The
// returned dbName — the table name or the first file's base name — is also
// the default document ID of a verification run, so both binaries seed
// identically for identical flags.
func LoadDatabase(paths []string, tableName string) (db *sqldb.Database, dbName string, err error) {
	if len(paths) == 0 {
		return nil, "", fmt.Errorf("no CSV tables given")
	}
	if tableName != "" && len(paths) > 1 {
		return nil, "", fmt.Errorf("-table applies to a single -csv; multi-table databases name tables by file")
	}
	dbName = tableName
	if dbName == "" {
		dbName = TableName(paths[0])
	}
	db = sqldb.NewDatabase(dbName)
	for _, path := range paths {
		name := tableName
		if name == "" || len(paths) > 1 {
			name = TableName(path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		table, err := sqldb.LoadCSV(name, f)
		f.Close()
		if err != nil {
			return nil, "", err
		}
		db.AddTable(table)
	}
	return db, dbName, nil
}
