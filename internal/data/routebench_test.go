package data_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/route"
)

// corpusSignature renders everything identity-relevant about the corpus.
func corpusSignature(c *data.RouteBenchCorpus) string {
	s := ""
	for _, db := range c.Databases {
		s += db.Name + ":" + fmt.Sprint(db.TableNames()) + "\n"
	}
	for _, d := range c.Docs {
		s += d.ID + " " + d.Data.Name + "\n"
		for _, cl := range d.Claims {
			s += fmt.Sprintf("  %s|%s|%s|%v|%s\n", cl.ID, cl.Sentence, cl.Value, cl.Gold.Correct, cl.Gold.Query)
		}
	}
	ids := make([]string, 0, len(c.Gold))
	for id := range c.Gold {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s += id + "->" + fmt.Sprint(c.Gold[id]) + "\n"
	}
	return s
}

func TestRouteBenchDeterministic(t *testing.T) {
	a, err := data.RouteBench(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := data.RouteBench(7)
	if err != nil {
		t.Fatal(err)
	}
	if corpusSignature(a) != corpusSignature(b) {
		t.Fatal("routebench corpus differs across generations at the same seed")
	}
	if got := corpusSignature(a); got == corpusSignature(mustRouteBench(t, 8)) {
		t.Fatal("routebench corpus identical across different seeds")
	}
	if a.SubClaims < 24 {
		t.Fatalf("suspiciously few sub-claims: %d", a.SubClaims)
	}
	if a.Simple != 2*len(a.Docs) {
		t.Fatalf("simple claim count %d, want %d", a.Simple, 2*len(a.Docs))
	}
}

func mustRouteBench(t *testing.T, seed int64) *data.RouteBenchCorpus {
	t.Helper()
	c, err := data.RouteBench(seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRouteBenchDecomposeRoundTrip pins the contract between the corpus
// generator and the decomposer: every compound claim splits into exactly its
// gold conjuncts, and no simple claim or conjunct splits further.
func TestRouteBenchDecomposeRoundTrip(t *testing.T) {
	c := mustRouteBench(t, 7)
	for _, d := range c.Docs {
		for _, cl := range d.Claims {
			subs := route.Decompose(cl.Sentence, cl.Value, cl.Context)
			gold, compound := c.Gold[cl.ID]
			if !compound {
				if len(subs) != 1 {
					t.Fatalf("simple claim %s decomposed into %d parts", cl.ID, len(subs))
				}
				continue
			}
			if len(subs) != len(gold) {
				t.Fatalf("compound claim %s decomposed into %d parts, want %d (%q)", cl.ID, len(subs), len(gold), cl.Sentence)
			}
			if subs[0].Value != cl.Value {
				t.Errorf("claim %s: first sub value %q, parent value %q", cl.ID, subs[0].Value, cl.Value)
			}
			for j, sub := range subs {
				again := route.Decompose(sub.Sentence, sub.Value, sub.Context)
				if len(again) != 1 {
					t.Errorf("claim %s sub %d re-decomposed into %d parts (%q)", cl.ID, j, len(again), sub.Sentence)
				}
			}
		}
	}
}

// TestRouteBenchRoutingAccuracy is the acceptance gate's accuracy floor:
// binding every conjunct against the full catalog must hit the gold entry
// at least 90% of the time.
func TestRouteBenchRoutingAccuracy(t *testing.T) {
	c := mustRouteBench(t, 7)
	cat := route.NewCatalog(c.Databases...)
	if cat.Len() != 6 {
		t.Fatalf("catalog has %d entries, want 6", cat.Len())
	}
	total, correct := 0, 0
	for _, d := range c.Docs {
		for i, cl := range d.Claims {
			gold, ok := c.Gold[cl.ID]
			if !ok {
				continue
			}
			subs := route.Decompose(cl.Sentence, cl.Value, cl.Context)
			if len(subs) != len(gold) {
				t.Fatalf("claim %s: %d subs vs %d gold labels", cl.ID, len(subs), len(gold))
			}
			for j, sub := range subs {
				entry, _, _ := cat.Bind(7, route.DefaultTopK, d.ID, i, j, sub)
				if entry == nil {
					t.Fatalf("claim %s sub %d: no binding", cl.ID, j)
				}
				total++
				if entry.Name() == gold[j] {
					correct++
				} else {
					t.Logf("misroute %s sub %d: got %s want %s (%q)", cl.ID, j, entry.Name(), gold[j], sub.Sentence)
				}
			}
		}
	}
	acc := float64(correct) / float64(total)
	t.Logf("routing accuracy %.3f (%d/%d)", acc, correct, total)
	if acc < 0.9 {
		t.Fatalf("routing accuracy %.3f below the 0.9 acceptance floor", acc)
	}
}
