package data

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/claim"
	"repro/internal/sqldb"
)

// pushdown_test.go is the predicate-pushdown property test: for generated
// safe filters over every table of the JoinBench schemas (flat and
// normalized), the vectorized engine with pushdown enabled must return
// exactly the row oracle's row count — and ExplainQuery must confirm the
// predicate actually pushed into the scan, so the property is not vacuously
// tested against the fallback path.

func quoteIdent(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func quoteText(s string) string {
	return `'` + strings.ReplaceAll(s, `'`, `''`) + `'`
}

// sampleLit renders a literal drawn from the column's actual values, so
// generated comparisons are selective rather than all-true/all-false.
func sampleLit(rng *rand.Rand, t *sqldb.Table, col int) string {
	for tries := 0; tries < 8 && len(t.Rows) > 0; tries++ {
		v := t.Rows[rng.Intn(len(t.Rows))][col]
		if v.IsNull() {
			continue
		}
		if v.Kind() == sqldb.KindText {
			return quoteText(v.Text())
		}
		return v.String()
	}
	return "0"
}

// safeFilter generates one pushdown-eligible predicate over the table.
func safeFilter(rng *rand.Rand, t *sqldb.Table) string {
	ci := rng.Intn(len(t.Columns))
	col := quoteIdent(t.Columns[ci].Name)
	var p string
	switch rng.Intn(7) {
	case 0:
		p = fmt.Sprintf("%s %s %s", col, []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)], sampleLit(rng, t, ci))
	case 1:
		p = fmt.Sprintf("%s BETWEEN %s AND %s", col, sampleLit(rng, t, ci), sampleLit(rng, t, ci))
	case 2:
		p = fmt.Sprintf("%s IN (%s, %s)", col, sampleLit(rng, t, ci), sampleLit(rng, t, ci))
	case 3:
		p = fmt.Sprintf("%s IS %sNULL", col, []string{"", "NOT "}[rng.Intn(2)])
	case 4:
		p = fmt.Sprintf("NOT %s = %s", col, sampleLit(rng, t, ci))
	case 5:
		cj := rng.Intn(len(t.Columns))
		p = fmt.Sprintf("%s >= %s OR %s IS NULL", col, sampleLit(rng, t, ci), quoteIdent(t.Columns[cj].Name))
	default:
		cj := rng.Intn(len(t.Columns))
		p = fmt.Sprintf("%s <= %s AND %s IS NOT NULL", col, sampleLit(rng, t, ci), quoteIdent(t.Columns[cj].Name))
	}
	return p
}

// uniqueDatabases collects the distinct databases behind a document set.
func uniqueDatabases(docs []*claim.Document) []*sqldb.Database {
	seen := map[*sqldb.Database]bool{}
	var out []*sqldb.Database
	for _, d := range docs {
		if d.Data != nil && !seen[d.Data] {
			seen[d.Data] = true
			out = append(out, d.Data)
		}
	}
	return out
}

// TestPushdownPreservesRowCounts is the property: pushing a safe filter into
// the scan never changes the number (or content) of surviving rows relative
// to the row-at-a-time oracle, across every table of both JoinBench layouts.
func TestPushdownPreservesRowCounts(t *testing.T) {
	flat, normalized, err := JoinBench(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(512))
	checked, pushed := 0, 0
	for _, db := range append(uniqueDatabases(flat), uniqueDatabases(normalized)...) {
		for _, name := range db.TableNames() {
			tab := db.Table(name)
			if tab == nil {
				t.Fatalf("table %q vanished", name)
			}
			if len(tab.Columns) == 0 {
				continue
			}
			for i := 0; i < 12; i++ {
				pred := safeFilter(rng, tab)
				q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s", quoteIdent(name), pred)

				stmt, err := sqldb.Parse(q)
				if err != nil {
					t.Fatalf("generator produced unparsable SQL: %q: %v", q, err)
				}
				oracle, err := sqldb.Exec(db, stmt) // row engine, no pushdown
				if err != nil {
					t.Fatalf("row oracle rejected %q: %v", q, err)
				}
				got, err := sqldb.Query(db, q) // vectorized, pushdown enabled
				if err != nil {
					t.Fatalf("Query rejected %q: %v", q, err)
				}
				if oracle.String() != got.String() {
					t.Fatalf("pushdown changed the row count:\nsql: %q\noracle: %s\nvectorized: %s", q, oracle.String(), got.String())
				}

				// The same predicate selecting full rows must agree too.
				qrows := fmt.Sprintf("SELECT * FROM %s WHERE %s", quoteIdent(name), pred)
				stmt2, err := sqldb.Parse(qrows)
				if err != nil {
					t.Fatal(err)
				}
				oracleRows, err := sqldb.Exec(db, stmt2)
				if err != nil {
					t.Fatalf("row oracle rejected %q: %v", qrows, err)
				}
				gotRows, err := sqldb.Query(db, qrows)
				if err != nil {
					t.Fatalf("Query rejected %q: %v", qrows, err)
				}
				if oracleRows.String() != gotRows.String() {
					t.Fatalf("pushdown changed row content:\nsql: %q\noracle:\n%s\nvectorized:\n%s", qrows, oracleRows.String(), gotRows.String())
				}

				// Prove the filter actually pushed: the plan must show the
				// scan absorbing at least one conjunct with no residual.
				explain, err := sqldb.ExplainQuery(db, q)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Contains(explain, "pushed=0") || !strings.Contains(explain, "residual=0") {
					t.Fatalf("safe filter did not push down:\nsql: %q\nexplain:\n%s", q, explain)
				}
				checked++
				pushed++
			}

			// Control: an arithmetic predicate is outside the safe subset and
			// must stay residual — while still matching the oracle's count.
			numCol := ""
			for _, c := range tab.Columns {
				if c.Type == sqldb.KindInt || c.Type == sqldb.KindFloat {
					numCol = c.Name
					break
				}
			}
			if numCol != "" {
				q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s + 0 >= 0", quoteIdent(name), quoteIdent(numCol))
				stmt, err := sqldb.Parse(q)
				if err != nil {
					t.Fatal(err)
				}
				oracle, err := sqldb.Exec(db, stmt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sqldb.Query(db, q)
				if err != nil {
					t.Fatal(err)
				}
				if oracle.String() != got.String() {
					t.Fatalf("residual filter changed the row count:\nsql: %q\noracle: %s\nvectorized: %s", q, oracle.String(), got.String())
				}
				explain, err := sqldb.ExplainQuery(db, q)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(explain, "pushed=0") || !strings.Contains(explain, "residual=1") {
					t.Fatalf("arithmetic predicate unexpectedly pushed:\nsql: %q\nexplain:\n%s", q, explain)
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("property only exercised %d cases; JoinBench schemas should yield far more", checked)
	}
	t.Logf("pushdown property held on %d cases (%d pushed, %d residual controls)", checked, pushed, checked-pushed)
}
