package data

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/claim"
	"repro/internal/nl"
	"repro/internal/sqldb"
)

// AggChecker generates the AggChecker-shaped corpus: 56 documents with 392
// numerical claims in total (7 per document), spread evenly over the four
// source domains, with the alias and ambiguity hazards of real articles.
func AggChecker(seed int64) ([]*claim.Document, error) {
	return Generate(GenConfig{
		Seed:            seed,
		Docs:            56,
		ClaimsPerDoc:    7,
		IncorrectRate:   0.15,
		AliasRate:       0.55,
		ShortPhraseRate: 0.45,
	})
}

// TabFact generates the TabFact-shaped sample: 100 numerical claims over 28
// small Wikipedia-style tables, with simpler claims than AggChecker
// (mostly lookups and counts, per Table 3's complexity profile).
func TabFact(seed int64) ([]*claim.Document, error) {
	weights := map[nl.Kind]int{
		nl.KindLookup:   45,
		nl.KindCountAll: 8,
		nl.KindCount:    20,
		nl.KindSum:      8,
		nl.KindMax:      10,
		nl.KindMin:      5,
		nl.KindArgMax:   0,
		nl.KindPercent:  4,
	}
	docs, err := Generate(GenConfig{
		Seed:            seed,
		Docs:            28,
		ClaimsPerDoc:    4, // trimmed to 100 below
		IncorrectRate:   0.3,
		AliasRate:       0.15,
		ShortPhraseRate: 0,
		KindWeights:     weights,
		Domains:         []string{"TabFact"},
		RowsPerTable:    10,
	})
	if err != nil {
		return nil, err
	}
	// Trim to exactly 100 claims, the paper's sample size.
	remaining := 100
	for _, d := range docs {
		if len(d.Claims) > remaining {
			d.Claims = d.Claims[:remaining]
		}
		remaining -= len(d.Claims)
	}
	return docs, nil
}

// WikiText generates the WikiText-shaped corpus: 50 textual claims from 14
// Wikipedia-style articles (ArgMax/ArgMin claims whose value is an entity
// name rather than a number).
func WikiText(seed int64) ([]*claim.Document, error) {
	docs, err := Generate(GenConfig{
		Seed:          seed,
		Docs:          14,
		ClaimsPerDoc:  4, // trimmed to 50 below
		IncorrectRate: 0.12,
		Textual:       true,
		Domains:       []string{DomainWikipedia},
		RowsPerTable:  12, // small Wikipedia tables, within TAPEX's budget
	})
	if err != nil {
		return nil, err
	}
	remaining := 50
	for _, d := range docs {
		if len(d.Claims) > remaining {
			d.Claims = d.Claims[:remaining]
		}
		remaining -= len(d.Claims)
	}
	return docs, nil
}

// UnitConv generates the unit-conversion benchmark: 20 claims from 8
// documents over unit-bearing columns. aligned=true expresses claims in the
// data's own units; aligned=false forces unit conversions. The same seed
// yields paired documents differing only in unit treatment.
func UnitConv(seed int64, aligned bool) ([]*claim.Document, error) {
	rate := 0.0
	if !aligned {
		rate = 1.0
	}
	weights := map[nl.Kind]int{
		nl.KindLookup: 5, nl.KindSum: 3, nl.KindAvg: 3, nl.KindMax: 2, nl.KindMin: 2,
	}
	docs, err := Generate(GenConfig{
		Seed:            seed,
		Docs:            8,
		ClaimsPerDoc:    3, // trimmed to 20 below
		IncorrectRate:   0.2,
		UnitConvertRate: rate,
		KindWeights:     weights,
		Domains:         []string{"UnitConv"},
	})
	if err != nil {
		return nil, err
	}
	remaining := 20
	for _, d := range docs {
		if len(d.Claims) > remaining {
			d.Claims = d.Claims[:remaining]
		}
		remaining -= len(d.Claims)
	}
	return docs, nil
}

// JoinBench generates the join benchmark: AggChecker-style claims whose
// databases are normalized so that verification queries require joins. The
// paper decomposes three single-table schemas into 23 tables total; the
// airlines/drinks/so_survey specs normalize to 8 + 5 + 10 = 23 tables.
func JoinBench(seed int64) ([]*claim.Document, []*claim.Document, error) {
	flat, err := Generate(GenConfig{
		Seed:            seed,
		Docs:            12,
		ClaimsPerDoc:    6,
		IncorrectRate:   0.2,
		AliasRate:       0.1,
		ShortPhraseRate: 0,
		Domains:         []string{Domain538, DomainStackOverflow},
	})
	if err != nil {
		return nil, nil, err
	}
	normalized := make([]*claim.Document, 0, len(flat))
	for _, d := range flat {
		nd, err := NormalizeDocument(d)
		if err != nil {
			return nil, nil, err
		}
		normalized = append(normalized, nd)
	}
	return flat, normalized, nil
}

// NormalizeDocument rewrites a document's single-table database into a
// normalized multi-table schema (entity table plus one table per measure
// column, linked by a synthetic key) and recomputes gold queries, which now
// require joins. Claims' text is untouched: the same English claim must be
// verified against a harder schema.
func NormalizeDocument(d *claim.Document) (*claim.Document, error) {
	tabs := d.Data.Tables()
	if len(tabs) != 1 {
		return nil, fmt.Errorf("data: normalize expects a single-table database, got %d", len(tabs))
	}
	ndb, err := NormalizeTable(tabs[0], d.Data.Name+"_norm")
	if err != nil {
		return nil, err
	}
	nd := &claim.Document{
		ID:     d.ID + "-norm",
		Title:  d.Title,
		Domain: d.Domain,
		Data:   ndb,
	}
	schema := nl.SchemaFromDatabase(ndb)
	for _, c := range d.Claims {
		nc := *c
		nc.ID = c.ID + "-norm"
		// Recompute the gold query against the normalized schema by
		// re-deriving it from the flat gold query's referenced columns:
		// parse, collect columns, and rebuild via the nl layer. The flat
		// gold queries were all built by nl.BuildSQL, so reparsing the
		// claim sentence is unnecessary — rewriting FROM clauses suffices.
		ng, err := rebuildGold(c.Gold.Query, schema)
		if err != nil {
			return nil, fmt.Errorf("data: rebuild gold for %s: %w", c.ID, err)
		}
		nc.Gold.Query = ng
		nd.Claims = append(nd.Claims, &nc)
	}
	return nd, nil
}

// NormalizeTable splits a flat table into an entity table plus one table per
// non-entity column, joined through a synthetic <entity>_id key.
func NormalizeTable(t *sqldb.Table, dbName string) (*sqldb.Database, error) {
	entIdx := -1
	for i, c := range t.Columns {
		if nl.IsEntityColumn(c.Name) {
			entIdx = i
			break
		}
	}
	if entIdx < 0 {
		return nil, fmt.Errorf("data: table %q has no entity column", t.Name)
	}
	entCol := t.Columns[entIdx].Name
	key := strings.ToLower(entCol) + "_id"

	db := sqldb.NewDatabase(dbName)
	entTab := sqldb.NewTable(t.Name, key, entCol)
	for ri, row := range t.Rows {
		entTab.MustAppendRow(sqldb.Int(int64(ri+1)), row[entIdx])
	}
	db.AddTable(entTab)
	for ci, c := range t.Columns {
		if ci == entIdx {
			continue
		}
		mt := sqldb.NewTable(t.Name+"_"+strings.ToLower(c.Name), key, c.Name)
		for ri, row := range t.Rows {
			mt.MustAppendRow(sqldb.Int(int64(ri+1)), row[ci])
		}
		db.AddTable(mt)
	}
	return db, nil
}

// rebuildGold rewrites a gold query produced by nl.BuildSQL against a flat
// schema so it runs on the normalized schema: every referenced column keeps
// its name (normalization preserves column names), so it suffices to rebuild
// the FROM/JOIN clauses via the same join-construction path the nl layer
// uses. We do this by parsing the query, collecting column references, and
// asking nl for a query with the same SELECT surface but new FROM clauses.
func rebuildGold(flatSQL string, schema *nl.Schema) (string, error) {
	stmt, err := sqldb.Parse(flatSQL)
	if err != nil {
		return "", err
	}
	rewriteFrom(stmt, schema)
	return stmt.SQL(), nil
}

// rewriteFrom replaces the FROM clause of stmt (and recursively of its
// subqueries) with a join chain covering all columns the statement
// references, resolved against the normalized schema.
func rewriteFrom(stmt *sqldb.SelectStmt, schema *nl.Schema) {
	if cols := collectColumns(stmt); len(cols) > 0 {
		fromSQL, err := nl.FromClause(schema, cols)
		if err == nil { // on failure leave untouched; the query fails loudly
			if replace := sqldb.ParseFromClause(fromSQL); replace != nil {
				stmt.From = replace.From
				stmt.Joins = replace.Joins
			}
		}
		// Clear stale table qualifiers: columns keep their names across
		// normalization but live in different tables now.
		stripQualifiers(stmt)
	}
	for _, sub := range subqueries(stmt) {
		rewriteFrom(sub, schema)
	}
}

func collectColumns(stmt *sqldb.SelectStmt) []string {
	set := map[string]bool{}
	var out []string
	var visitExpr func(e sqldb.Expr)
	visit := func(s *sqldb.SelectStmt) {
		for _, it := range s.Items {
			visitExpr(it.Expr)
		}
		if s.Where != nil {
			visitExpr(s.Where)
		}
		for _, g := range s.GroupBy {
			visitExpr(g)
		}
		if s.Having != nil {
			visitExpr(s.Having)
		}
		for _, o := range s.OrderBy {
			visitExpr(o.Expr)
		}
	}
	visitExpr = func(e sqldb.Expr) {
		switch v := e.(type) {
		case *sqldb.ColumnExpr:
			lower := strings.ToLower(v.Name)
			if !set[lower] {
				set[lower] = true
				out = append(out, v.Name)
			}
		case *sqldb.UnaryExpr:
			visitExpr(v.Expr)
		case *sqldb.BinaryExpr:
			visitExpr(v.Left)
			visitExpr(v.Right)
		case *sqldb.BetweenExpr:
			visitExpr(v.Expr)
			visitExpr(v.Lo)
			visitExpr(v.Hi)
		case *sqldb.InExpr:
			visitExpr(v.Expr)
			for _, it := range v.List {
				visitExpr(it)
			}
		case *sqldb.IsNullExpr:
			visitExpr(v.Expr)
		case *sqldb.FuncExpr:
			for _, a := range v.Args {
				visitExpr(a)
			}
		case *sqldb.CastExpr:
			visitExpr(v.Expr)
		case *sqldb.CaseExpr:
			for _, w := range v.Whens {
				visitExpr(w.Cond)
				visitExpr(w.Then)
			}
			if v.Else != nil {
				visitExpr(v.Else)
			}
		}
		// Subqueries are handled by their own rewriteFrom pass.
	}
	visit(stmt)
	return out
}

func subqueries(stmt *sqldb.SelectStmt) []*sqldb.SelectStmt {
	var out []*sqldb.SelectStmt
	var visitExpr func(e sqldb.Expr)
	visitExpr = func(e sqldb.Expr) {
		switch v := e.(type) {
		case *sqldb.SubqueryExpr:
			out = append(out, v.Stmt)
		case *sqldb.ExistsExpr:
			out = append(out, v.Stmt)
		case *sqldb.InExpr:
			visitExpr(v.Expr)
			if v.Sub != nil {
				out = append(out, v.Sub)
			}
		case *sqldb.UnaryExpr:
			visitExpr(v.Expr)
		case *sqldb.BinaryExpr:
			visitExpr(v.Left)
			visitExpr(v.Right)
		case *sqldb.BetweenExpr:
			visitExpr(v.Expr)
			visitExpr(v.Lo)
			visitExpr(v.Hi)
		case *sqldb.FuncExpr:
			for _, a := range v.Args {
				visitExpr(a)
			}
		case *sqldb.CastExpr:
			visitExpr(v.Expr)
		case *sqldb.CaseExpr:
			for _, w := range v.Whens {
				visitExpr(w.Cond)
				visitExpr(w.Then)
			}
			if v.Else != nil {
				visitExpr(v.Else)
			}
		case *sqldb.IsNullExpr:
			visitExpr(v.Expr)
		}
	}
	for _, it := range stmt.Items {
		visitExpr(it.Expr)
	}
	if stmt.Where != nil {
		visitExpr(stmt.Where)
	}
	if stmt.Having != nil {
		visitExpr(stmt.Having)
	}
	return out
}

func stripQualifiers(stmt *sqldb.SelectStmt) {
	var visitExpr func(e sqldb.Expr)
	visitExpr = func(e sqldb.Expr) {
		switch v := e.(type) {
		case *sqldb.ColumnExpr:
			v.Table = ""
		case *sqldb.UnaryExpr:
			visitExpr(v.Expr)
		case *sqldb.BinaryExpr:
			visitExpr(v.Left)
			visitExpr(v.Right)
		case *sqldb.BetweenExpr:
			visitExpr(v.Expr)
			visitExpr(v.Lo)
			visitExpr(v.Hi)
		case *sqldb.InExpr:
			visitExpr(v.Expr)
			for _, it := range v.List {
				visitExpr(it)
			}
		case *sqldb.IsNullExpr:
			visitExpr(v.Expr)
		case *sqldb.FuncExpr:
			for _, a := range v.Args {
				visitExpr(a)
			}
		case *sqldb.CastExpr:
			visitExpr(v.Expr)
		case *sqldb.CaseExpr:
			for _, w := range v.Whens {
				visitExpr(w.Cond)
				visitExpr(w.Then)
			}
			if v.Else != nil {
				visitExpr(v.Else)
			}
		}
	}
	for _, it := range stmt.Items {
		visitExpr(it.Expr)
	}
	if stmt.Where != nil {
		visitExpr(stmt.Where)
	}
	for _, g := range stmt.GroupBy {
		visitExpr(g)
	}
	if stmt.Having != nil {
		visitExpr(stmt.Having)
	}
	for _, o := range stmt.OrderBy {
		visitExpr(o.Expr)
	}
}

// seededRNG is a convenience for tests and examples.
func seededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
