// Package data generates the benchmark corpora the experiments run on. The
// paper evaluates on AggChecker (real newspaper/Wikipedia articles), TabFact
// (Wikipedia tables), WikiText (textual Wikipedia claims), JoinBench
// (normalized AggChecker schemas), and a unit-conversion benchmark; those
// corpora are external artifacts, so this package builds synthetic
// equivalents with the same shape: the same document/claim counts, claim
// kinds matching the query-complexity profile of Table 3, the same domain
// structure (538 / StackOverflow / NYTimes / Wikipedia) used by Figure 7,
// and planted hazards (entity aliases, ambiguous phrases, unit mismatches)
// that exercise the failure-and-recovery paths of the verification methods.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/sqldb"
)

// Domain labels matching the claim sources of the AggChecker data set.
const (
	Domain538           = "538"
	DomainStackOverflow = "StackOverflow"
	DomainNYTimes       = "NYTimes"
	DomainWikipedia     = "Wikipedia"
)

// tableSpec declares one corpus table: its entity column and the numeric
// measure columns with their value ranges.
type tableSpec struct {
	name     string
	noun     string
	entity   string   // entity column name
	entities []string // entity value pool
	measures []measureSpec
	extraTex []textColSpec // additional text columns (e.g. f1 country)
}

type measureSpec struct {
	name string
	lo   float64
	hi   float64
	// integer forces integral values.
	integer bool
}

type textColSpec struct {
	name string
	pool []string
}

var airlinePool = []string{
	"Aer Lingus", "Aeroflot", "Air Canada", "Air France", "Alaska Airlines",
	"All Nippon Airways", "American Airlines", "British Airways", "Cathay Pacific",
	"Delta / Northwest", "Emirates", "Finnair", "Garuda Indonesia", "Iberia",
	"Japan Airlines", "KLM", "Korean Air", "Lufthansa", "Malaysia Airlines",
	"Qantas", "Singapore Airlines", "Southwest Airlines", "TAP Portugal",
	"Turkish Airlines", "United / Continental", "US Airways / America West",
}

var countryPool = []string{
	"France", "USA", "Germany", "Italy", "Spain", "Portugal", "UK",
	"Ireland", "Belgium", "Netherlands", "Austria", "Switzerland", "Poland",
	"Czech Republic", "Hungary", "Greece", "Sweden", "Norway", "Denmark",
	"Finland", "Australia", "Japan", "Brazil", "Argentina", "Canada",
	"Mexico", "Chile", "Peru", "Colombia", "South Africa", "Egypt",
	"Morocco", "India", "China", "South Korea", "Thailand", "Vietnam",
	"New Zealand", "Iceland", "Croatia",
}

var languagePool = []string{
	"JavaScript", "Python", "Java", "C#", "PHP", "C++", "TypeScript",
	"Ruby", "Swift", "Kotlin", "Go", "Rust", "Scala", "R", "Perl",
	"Haskell", "Elixir", "Clojure", "Dart", "Lua", "Julia", "Fortran",
	"COBOL", "Erlang", "F#",
}

var neighborhoodPool = []string{
	"Harlem", "Astoria", "Williamsburg", "Park Slope", "Bushwick",
	"Flushing", "Riverdale", "Tribeca", "SoHo", "Chelsea", "Greenpoint",
	"Inwood", "Bayside", "Flatbush", "Sunnyside", "Red Hook", "Kips Bay",
	"Morningside Heights", "Jackson Heights", "Forest Hills", "Crown Heights",
	"Bedford-Stuyvesant", "Long Island City", "Murray Hill", "East Village",
	"West Village", "Upper East Side", "Upper West Side", "Financial District",
	"Battery Park City", "Gramercy", "Hell's Kitchen", "Washington Heights",
	"Fort Greene", "Boerum Hill",
}

var cityPool = []string{
	"New York City", "Los Angeles", "Chicago", "Houston", "Phoenix",
	"Philadelphia", "San Antonio", "San Diego", "Dallas", "Denver",
	"Seattle", "Boston", "Detroit", "Portland", "Atlanta",
	"Miami", "Minneapolis", "Austin", "Nashville", "Baltimore",
	"Charlotte", "Columbus", "Indianapolis", "Memphis", "Milwaukee",
	"Kansas City", "Sacramento", "Tucson", "Fresno", "Omaha",
	"Raleigh", "Oakland", "Tampa", "Pittsburgh", "Cincinnati",
	"St. Louis", "Orlando", "Cleveland", "Buffalo", "Richmond",
}

var driverPool = []string{
	"Lewis Hamilton", "Michael Schumacher", "Sebastian Vettel", "Alain Prost",
	"Ayrton Senna", "Fernando Alonso", "Nigel Mansell", "Jackie Stewart",
	"Niki Lauda", "Jim Clark", "Juan Manuel Fangio", "Nelson Piquet",
	"Mika Hakkinen", "Kimi Raikkonen", "Jenson Button", "Damon Hill",
	"Giuseppe Farina", "Max Verstappen", "Valtteri Bottas", "Daniel Ricciardo",
	"Charles Leclerc", "Lando Norris", "Carlos Sainz", "Sergio Perez",
	"George Russell", "Felipe Massa", "Rubens Barrichello", "David Coulthard",
	"Gerhard Berger", "Jacques Villeneuve", "Mario Andretti", "James Hunt",
	"Emerson Fittipaldi", "Jack Brabham",
}

var moviePool = []string{
	"The Grand Voyage", "Midnight Harbor", "Silent Echoes", "The Last Meridian",
	"Paper Lanterns", "Crimson Tide Rising", "The Glass Orchard", "Northern Lights",
	"A Winter's Tale", "The Cartographer", "Salt and Stone", "The Violet Hour",
	"Harvest Moon", "The Long Goodbye", "Ashes of Time",
	"The Quiet Shore", "Ember and Oak", "The Seventh Bridge", "Lanterns at Dusk",
	"The Painted Desert", "A Thousand Rivers", "The Clockmaker's Daughter",
	"Shadows of August", "The Distant Bell", "Golden Meridian", "The Iron Coast",
	"Whispering Pines", "The Amber Road", "Falling Lightly", "The Night Garden",
	"Cedar and Smoke", "The Hollow Crown", "Saltwater Letters", "The Blue Hour",
	"Fields of Glass", "The Winter Orchard", "Miles from Nowhere", "The Paper Sky",
	"Driftwood", "The Last Cartograph",
}

var directorPool = []string{
	"Ava Lindqvist", "Marco Benedetti", "Sofia Andersson", "James Okafor",
	"Yuki Tanaka", "Elena Petrova", "Carlos Mendez", "Ingrid Bauer",
}

var clubPool = []string{
	"Riverside FC", "Northgate United", "Harbor City", "Western Rovers",
	"Lakeshore Athletic", "Eastfield Town", "Summit Rangers", "Valley Wanderers",
	"Old Quarter FC", "Millbrook City", "Crestwood United", "Southport FC",
}

var albumPool = []string{
	"Neon Skylines", "Paper Hearts", "Midnight Reverie", "Golden Hour",
	"Static Bloom", "Violet Tides", "Echo Chamber", "Wildflower Season",
	"Glass Houses", "Polar Nights", "Velvet Morning", "Silver Linings",
}

var artistPool = []string{
	"The Lanterns", "Mira Sol", "Cobalt Drive", "June & the Harbor",
	"Foxglove", "Arcadia Line", "The Night Owls", "Scarlet Avenue",
}

// corpusTables declares every base table of the corpus keyed by name.
var corpusTables = map[string]tableSpec{
	"airlines": {
		name: "airlines", noun: "airlines", entity: "airline", entities: airlinePool,
		measures: []measureSpec{
			{name: "avail_seat_km_per_week", lo: 3e8, hi: 7e9, integer: true},
			// The 85-99 and 00-14 sibling columns deliberately live in
			// different magnitude bands: picking the wrong sibling then
			// fails the order-of-magnitude plausibility gate and escalates
			// rather than silently mis-verifying.
			{name: "incidents_85_99", lo: 140, hi: 980, integer: true},
			{name: "fatal_accidents_85_99", lo: 40, hi: 140, integer: true},
			{name: "fatalities_85_99", lo: 2100, hi: 9500, integer: true},
			{name: "incidents_00_14", lo: 0, hi: 24, integer: true},
			{name: "fatal_accidents_00_14", lo: 0, hi: 3, integer: true},
			{name: "fatalities_00_14", lo: 0, hi: 537, integer: true},
		},
	},
	"drinks": {
		name: "drinks", noun: "countries", entity: "country", entities: countryPool,
		measures: []measureSpec{
			{name: "beer_servings", lo: 20, hi: 380, integer: true},
			{name: "spirit_servings", lo: 10, hi: 300, integer: true},
			{name: "wine_servings", lo: 5, hi: 370, integer: true},
			{name: "total_litres_of_pure_alcohol", lo: 0.5, hi: 14.5},
		},
	},
	"so_survey": {
		name: "so_survey", noun: "programming languages", entity: "language", entities: languagePool,
		measures: []measureSpec{
			{name: "developers_using", lo: 1200, hi: 68000, integer: true},
			{name: "avg_salary_usd", lo: 42000, hi: 135000, integer: true},
			{name: "satisfaction_score", lo: 2.1, hi: 4.9},
			{name: "years_experience_avg", lo: 2.5, hi: 14.0},
			{name: "remote_share_pct", lo: 8, hi: 72, integer: true},
			{name: "open_source_contrib_pct", lo: 5, hi: 55, integer: true},
			{name: "job_seeking_pct", lo: 10, hi: 65, integer: true},
			{name: "median_age", lo: 24, hi: 41, integer: true},
			{name: "respondents", lo: 400, hi: 24000, integer: true},
		},
	},
	"housing": {
		name: "housing", noun: "neighborhoods", entity: "neighborhood", entities: neighborhoodPool,
		measures: []measureSpec{
			{name: "median_rent_usd", lo: 1100, hi: 4300, integer: true},
			{name: "population", lo: 4700, hi: 270000, integer: true},
			{name: "vacancy_rate_pct", lo: 1.1, hi: 9.8},
			{name: "median_income_usd", lo: 31000, hi: 185000, integer: true},
			{name: "avg_unit_sqft", lo: 420, hi: 1600, integer: true},
		},
	},
	"commute": {
		name: "commute", noun: "cities", entity: "city", entities: cityPool,
		measures: []measureSpec{
			{name: "avg_commute_minutes", lo: 18, hi: 52, integer: true},
			{name: "transit_share_pct", lo: 2, hi: 57, integer: true},
			{name: "bike_share_pct", lo: 1, hi: 12, integer: true},
			{name: "population", lo: 600000, hi: 8500000, integer: true},
		},
	},
	"f1": {
		name: "f1", noun: "drivers", entity: "driver", entities: driverPool,
		extraTex: []textColSpec{{name: "country", pool: countryPool}},
		measures: []measureSpec{
			{name: "wins", lo: 0, hi: 105, integer: true},
			{name: "podiums", lo: 0, hi: 202, integer: true},
			{name: "championships", lo: 0, hi: 7, integer: true},
			{name: "races_started", lo: 10, hi: 360, integer: true},
		},
	},
	"cities": {
		name: "cities", noun: "cities", entity: "city", entities: cityPool,
		measures: []measureSpec{
			{name: "population", lo: 600000, hi: 8500000, integer: true},
			{name: "area_km2", lo: 120, hi: 1700},
			{name: "elevation_m", lo: 2, hi: 1610, integer: true},
			{name: "founded_year", lo: 1620, hi: 1910, integer: true},
		},
	},
	"movies": {
		name: "movies", noun: "films", entity: "title", entities: moviePool,
		extraTex: []textColSpec{{name: "director", pool: directorPool}},
		measures: []measureSpec{
			{name: "year", lo: 1978, hi: 2024, integer: true},
			{name: "box_office_musd", lo: 1.2, hi: 940},
			{name: "runtime_min", lo: 81, hi: 192, integer: true},
		},
	},
	"standings": {
		name: "standings", noun: "clubs", entity: "club", entities: clubPool,
		measures: []measureSpec{
			{name: "played", lo: 30, hi: 38, integer: true},
			{name: "won", lo: 2, hi: 28, integer: true},
			{name: "drawn", lo: 0, hi: 15, integer: true},
			{name: "lost", lo: 1, hi: 25, integer: true},
			{name: "goals_for", lo: 18, hi: 95, integer: true},
			{name: "goals_against", lo: 15, hi: 88, integer: true},
			{name: "points", lo: 10, hi: 93, integer: true},
		},
	},
	"albums": {
		name: "albums", noun: "albums", entity: "album", entities: albumPool,
		extraTex: []textColSpec{{name: "artist", pool: artistPool}},
		measures: []measureSpec{
			{name: "sales_m", lo: 0.2, hi: 31},
			{name: "weeks_no1", lo: 0, hi: 19, integer: true},
			{name: "chart_peak", lo: 1, hi: 40, integer: true},
		},
	},
}

// domainTables maps each document domain to the tables it draws from.
var domainTables = map[string][]string{
	Domain538:           {"airlines", "drinks"},
	DomainStackOverflow: {"so_survey"},
	DomainNYTimes:       {"housing", "commute"},
	DomainWikipedia:     {"f1", "cities", "movies"},
	// Synthetic-only domains used by the TabFact and unit-conversion
	// benchmarks.
	"TabFact":  {"standings", "albums"},
	"UnitConv": {"cities", "commute", "movies"},
}

// BuildTable materializes one corpus table with rng-randomized measures over
// a subset of the entity pool. rows caps the entity count (0 = full pool).
func BuildTable(spec tableSpec, rng *rand.Rand, rows int) *sqldb.Table {
	cols := []string{spec.entity}
	for _, tc := range spec.extraTex {
		cols = append(cols, tc.name)
	}
	for _, m := range spec.measures {
		cols = append(cols, m.name)
	}
	t := sqldb.NewTable(spec.name, cols...)
	n := len(spec.entities)
	if rows > 0 && rows < n {
		n = rows
	}
	perm := rng.Perm(len(spec.entities))[:n]
	for _, idx := range perm {
		row := []sqldb.Value{sqldb.Text(spec.entities[idx])}
		for _, tc := range spec.extraTex {
			row = append(row, sqldb.Text(tc.pool[rng.Intn(len(tc.pool))]))
		}
		for _, m := range spec.measures {
			v := m.lo + rng.Float64()*(m.hi-m.lo)
			if m.integer {
				row = append(row, sqldb.Int(int64(v)))
			} else {
				row = append(row, sqldb.Float(float64(int64(v*100))/100))
			}
		}
		t.MustAppendRow(row...)
	}
	return t
}

// BuildDatabase materializes a database containing the named corpus tables.
func BuildDatabase(name string, rng *rand.Rand, rows int, tables ...string) (*sqldb.Database, error) {
	db := sqldb.NewDatabase(name)
	for _, tn := range tables {
		spec, ok := corpusTables[tn]
		if !ok {
			return nil, fmt.Errorf("data: unknown corpus table %q", tn)
		}
		db.AddTable(BuildTable(spec, rng, rows))
	}
	return db, nil
}

// TableNames returns the names of all corpus tables.
func TableNames() []string {
	out := make([]string, 0, len(corpusTables))
	for n := range corpusTables {
		out = append(out, n)
	}
	return out
}
