package data

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/claim"
	"repro/internal/nl"
	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// RouteBenchCorpus is the synthetic multi-database compound-claim benchmark
// of DESIGN.md §16: three databases built from disjoint JoinBench/AggChecker
// table specs, documents homed on one database each, and compound claims
// whose conjuncts span two or three databases. Gold carries the expected
// routing — claim ID to the "db/table" label of each conjunct in order — so
// routebench can measure routing accuracy against it.
type RouteBenchCorpus struct {
	// Databases is the routing catalog in registration order.
	Databases []*sqldb.Database
	// Docs carries the claims; each document's Data is its home database
	// (the database a non-routing verifier would check everything against).
	Docs []*claim.Document
	// Gold maps compound-claim IDs to the expected entry per sub-claim.
	Gold map[string][]string
	// SubClaims is the total conjunct count over all compound claims.
	SubClaims int
	// Simple counts the non-compound claims (the degenerate surface).
	Simple int
}

// routeBenchDBs lays out which corpus tables live in which database. The
// tables are chosen so no column name or lexicon phrase is shared between
// two databases' tables — routing mistakes then reflect the router, not an
// ambiguous catalog.
var routeBenchDBs = []struct {
	name   string
	tables []string
}{
	{"fivethirtyeight", []string{"airlines", "drinks"}},
	{"stackoverflow", []string{"so_survey"}},
	{"wikipedia", []string{"f1", "cities", "movies"}},
}

// routeBenchIncorrectRate is the fraction of sub-claims whose value is
// perturbed, exercising both verdict directions through recombination.
const routeBenchIncorrectRate = 0.3

// RouteBench generates the corpus: 12 documents, each with 2 simple claims
// drawn from its home database and 3 compound claims spanning 2–3
// databases.
func RouteBench(seed int64) (*RouteBenchCorpus, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x7031e))
	corpus := &RouteBenchCorpus{Gold: make(map[string][]string)}

	var targets []routeTarget
	for _, d := range routeBenchDBs {
		db, err := BuildDatabase(d.name, rng, 14, d.tables...)
		if err != nil {
			return nil, err
		}
		corpus.Databases = append(corpus.Databases, db)
		schema := nl.SchemaFromDatabase(db)
		for _, tn := range d.tables {
			targets = append(targets, routeTarget{db: db, schema: schema, spec: corpusTables[tn], entry: db.Name + "/" + tn})
		}
	}
	lex := nl.DefaultLexicon()

	// draw renders one atomic claim against a target table.
	draw := func(t routeTarget) (sentence, value, goldSQL string, correct bool, err error) {
		for tries := 0; tries < 40; tries++ {
			s, v, q, c, e := drawRouteSub(rng, lex, t.db, t.schema, t.spec)
			if e == nil {
				return s, v, q, c, nil
			}
			err = e
		}
		return "", "", "", false, fmt.Errorf("data: routebench cannot draw a claim for %s: %w", t.entry, err)
	}

	const docCount = 12
	for d := 0; d < docCount; d++ {
		home := targets[d%len(targets)]
		doc := &claim.Document{
			ID:     fmt.Sprintf("routedoc-%02d", d+1),
			Title:  fmt.Sprintf("A cross-database summary homed on %s", home.db.Name),
			Domain: "RouteBench",
			Data:   home.db,
		}
		// Two simple claims against the home database: the degenerate
		// surface routing must leave untouched.
		for i := 0; i < 2; i++ {
			sentence, value, goldSQL, correct, err := draw(home)
			if err != nil {
				return nil, err
			}
			c, err := claim.New(fmt.Sprintf("%s-s%d", doc.ID, i+1), sentence, value, "")
			if err != nil {
				return nil, err
			}
			c.Gold = claim.Gold{Query: goldSQL, Correct: correct}
			doc.Claims = append(doc.Claims, c)
			corpus.Simple++
		}
		// Three compound claims spanning 2–3 distinct tables, at least two
		// databases each.
		for i := 0; i < 3; i++ {
			n := 2 + rng.Intn(2)
			picked := pickCrossDB(rng, targets, n)
			var sentences, queries, gold []string
			value := ""
			correct := true
			for _, t := range picked {
				s, v, q, c, err := draw(t)
				if err != nil {
					return nil, err
				}
				sentences = append(sentences, s)
				queries = append(queries, q)
				gold = append(gold, t.entry)
				correct = correct && c
				if value == "" {
					value = v
				}
			}
			compound := joinConjuncts(sentences)
			id := fmt.Sprintf("%s-x%d", doc.ID, i+1)
			c, err := claim.New(id, compound, value, "")
			if err != nil {
				return nil, fmt.Errorf("data: routebench compound claim %s: %w", id, err)
			}
			c.Gold = claim.Gold{Query: strings.Join(queries, "; "), Correct: correct, Difficulty: 0.8}
			doc.Claims = append(doc.Claims, c)
			corpus.Gold[id] = gold
			corpus.SubClaims += len(gold)
		}
		corpus.Docs = append(corpus.Docs, doc)
	}
	return corpus, nil
}

// routeTarget is one routable (database, table) pair of the corpus.
type routeTarget struct {
	db     *sqldb.Database
	schema *nl.Schema
	spec   tableSpec
	entry  string
}

// pickCrossDB draws n distinct targets covering at least two databases.
func pickCrossDB(rng *rand.Rand, targets []routeTarget, n int) []routeTarget {
	for {
		perm := rng.Perm(len(targets))[:n]
		picked := make([]routeTarget, 0, n)
		dbs := make(map[string]bool)
		for _, idx := range perm {
			picked = append(picked, targets[idx])
			dbs[targets[idx].db.Name] = true
		}
		if len(dbs) >= 2 {
			return picked
		}
	}
}

// joinConjuncts joins rendered sentences with the ", and " connective the
// decomposer splits on, preserving each conjunct byte-for-byte: stripping
// the non-final periods and re-appending the final one round-trips through
// route.Decompose exactly.
func joinConjuncts(sentences []string) string {
	parts := make([]string, len(sentences))
	for i, s := range sentences {
		parts[i] = strings.TrimSuffix(s, ".")
	}
	return strings.Join(parts, ", and ") + "."
}

// routeSubKinds are the claim kinds compound conjuncts draw from: every one
// renders the routed table's column phrase (and, for Lookup, an entity
// value) into the sentence, which is the lexical signal routing scores on.
var routeSubKinds = []nl.Kind{nl.KindLookup, nl.KindLookup, nl.KindSum, nl.KindAvg, nl.KindMin, nl.KindMax}

// drawRouteSub renders one atomic claim against a table: spec, gold SQL,
// gold value, a possibly-perturbed display value, and the sentence. It is a
// hazard-free cousin of the generator in gen.go — routing quality, not
// translation hazards, is what this corpus isolates.
func drawRouteSub(rng *rand.Rand, lex *nl.Lexicon, db *sqldb.Database, schema *nl.Schema, ts tableSpec) (sentence, value, goldSQL string, correct bool, err error) {
	kind := routeSubKinds[rng.Intn(len(routeSubKinds))]
	tab := db.Table(ts.name)
	if tab == nil || len(tab.Rows) == 0 {
		return "", "", "", false, fmt.Errorf("data: empty table %q", ts.name)
	}
	m := ts.measures[rng.Intn(len(ts.measures))]
	spec := &nl.Spec{Kind: kind, Noun: ts.noun, Column: m.name}
	if kind == nl.KindLookup {
		spec.EntityCol = ts.entity
		row := tab.Rows[rng.Intn(len(tab.Rows))]
		spec.EntityVal = row[tab.ColumnIndex(ts.entity)].Text()
	}
	goldSQL, err = nl.BuildSQL(schema, spec)
	if err != nil {
		return "", "", "", false, err
	}
	goldVal, err := sqldb.QueryScalar(db, goldSQL)
	if err != nil || goldVal.IsNull() {
		return "", "", "", false, fmt.Errorf("data: gold query unusable: %w", err)
	}
	f, ok := goldVal.AsFloat()
	if !ok {
		return "", "", "", false, fmt.Errorf("data: gold value %q not numeric", goldVal.String())
	}
	prec := 0
	if f != float64(int64(f)) {
		prec = 1 + rng.Intn(2)
	}
	correct = rng.Float64() >= routeBenchIncorrectRate
	if correct {
		value = textutil.FormatNumber(textutil.RoundTo(f, prec))
	} else {
		value, err = perturbNumber(rng, f, prec)
		if err != nil {
			return "", "", "", false, err
		}
	}
	sentence = nl.RenderSentence(spec, lex, nl.RenderOptions{
		Value: value,
		Verb:  nl.ClaimVerbs[rng.Intn(len(nl.ClaimVerbs))],
	})
	if _, ok := textutil.FindValueSpan(sentence, value); !ok {
		return "", "", "", false, fmt.Errorf("data: value %q not locatable in %q", value, sentence)
	}
	for _, conn := range []string{", and ", ", while ", ", whereas "} {
		if strings.Contains(sentence, conn) {
			return "", "", "", false, fmt.Errorf("data: conjunct %q contains connective", sentence)
		}
	}
	return sentence, value, goldSQL, correct, nil
}

// perturbNumber draws a wrong-but-plausible display value (same recipe as
// gen.go's displayValue).
func perturbNumber(rng *rand.Rand, f float64, prec int) (string, error) {
	for tries := 0; tries < 50; tries++ {
		factor := 1.15 + rng.Float64()*1.3
		if rng.Intn(2) == 0 {
			factor = 1 / factor
		}
		p := f * factor
		if f == 0 {
			p = float64(1 + rng.Intn(5))
		}
		display := textutil.FormatNumber(textutil.RoundTo(p, prec))
		if !textutil.RoundMatches(display, f) {
			return display, nil
		}
	}
	return "", fmt.Errorf("data: cannot perturb value %v", f)
}
