package data

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/claim"
	"repro/internal/nl"
	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// GenConfig controls document/claim generation.
type GenConfig struct {
	// Seed drives all randomness; equal seeds reproduce the corpus.
	Seed int64
	// Docs is the number of documents to generate.
	Docs int
	// ClaimsPerDoc is the number of claims per document.
	ClaimsPerDoc int
	// IncorrectRate is the fraction of claims whose value is perturbed.
	IncorrectRate float64
	// AliasRate is the probability that an entity constant is rendered via
	// a display alias absent from the data (the Example 5.3 hazard).
	AliasRate float64
	// ShortPhraseRate is the probability that an ambiguous short column
	// phrase is used where one exists.
	ShortPhraseRate float64
	// UnitConvertRate is the probability that a claim about a unit-bearing
	// column is expressed in a converted unit.
	UnitConvertRate float64
	// Textual switches generation to textual claims (ArgMax/ArgMin over
	// entity columns) instead of numeric ones.
	Textual bool
	// KindWeights gives the relative frequency of each claim kind; nil
	// uses a default numeric mix.
	KindWeights map[nl.Kind]int
	// Domains cycles document domains; nil uses all four AggChecker
	// domains.
	Domains []string
	// RowsPerTable caps table sizes (0 = full entity pool).
	RowsPerTable int
}

// defaultNumericWeights approximates the AggChecker query-complexity
// profile of Table 3: mostly single-aggregate queries, about half involving
// a subquery (Percent contributes two).
var defaultNumericWeights = map[nl.Kind]int{
	nl.KindLookup:   22,
	nl.KindCountAll: 4,
	nl.KindCount:    14,
	nl.KindSum:      14,
	nl.KindAvg:      12,
	nl.KindMin:      6,
	nl.KindMax:      8,
	nl.KindDiff:     5,
	nl.KindArgMax:   0, // textual kinds excluded from numeric corpora
	nl.KindArgMin:   0,
	nl.KindPercent:  15,
}

var textualWeights = map[nl.Kind]int{
	nl.KindArgMax: 3,
	nl.KindArgMin: 2,
	nl.KindMode:   2,
}

// Generate builds a document corpus under the given configuration.
func Generate(cfg GenConfig) ([]*claim.Document, error) {
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		lex: nl.DefaultLexicon(),
	}
	if g.cfg.Domains == nil {
		g.cfg.Domains = []string{Domain538, DomainStackOverflow, DomainNYTimes, DomainWikipedia}
	}
	if g.cfg.KindWeights == nil {
		if cfg.Textual {
			g.cfg.KindWeights = textualWeights
		} else {
			g.cfg.KindWeights = defaultNumericWeights
		}
	}
	var docs []*claim.Document
	for i := 0; i < cfg.Docs; i++ {
		domain := g.cfg.Domains[i%len(g.cfg.Domains)]
		doc, err := g.genDocument(fmt.Sprintf("doc-%03d", i+1), domain)
		if err != nil {
			return nil, err
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

type generator struct {
	cfg GenConfig
	rng *rand.Rand
	lex *nl.Lexicon
}

func (g *generator) genDocument(id, domain string) (*claim.Document, error) {
	tables := domainTables[domain]
	if len(tables) == 0 {
		return nil, fmt.Errorf("data: no tables for domain %q", domain)
	}
	// Each document gets one freshly randomized table; documents in the
	// same domain rotate through the domain's table specs.
	tn := tables[g.rng.Intn(len(tables))]
	db, err := BuildDatabase(fmt.Sprintf("%s_%s", tn, id), g.rng, g.cfg.RowsPerTable, tn)
	if err != nil {
		return nil, err
	}
	doc := &claim.Document{
		ID:     id,
		Title:  fmt.Sprintf("A summary of the %s data", tn),
		Domain: domain,
		Data:   db,
	}
	schema := nl.SchemaFromDatabase(db)
	spec := corpusTables[tn]
	for len(doc.Claims) < g.cfg.ClaimsPerDoc {
		c, err := g.genClaim(fmt.Sprintf("%s-c%02d", id, len(doc.Claims)+1), db, schema, spec)
		if err != nil {
			// Unsatisfiable draw (ties, empty filters); redraw.
			continue
		}
		doc.Claims = append(doc.Claims, c)
	}
	return doc, nil
}

// genClaim draws one claim: a spec, its gold SQL and value, a (possibly
// perturbed) display value, and the rendered sentence with hazards.
func (g *generator) genClaim(id string, db *sqldb.Database, schema *nl.Schema, ts tableSpec) (*claim.Claim, error) {
	kind := g.drawKind()
	spec, colPhrase, entityDisplay, hint, err := g.drawSpec(kind, db, ts)
	if err != nil {
		return nil, err
	}
	goldSQL, err := nl.BuildSQL(schema, spec)
	if err != nil {
		return nil, err
	}
	goldVal, err := sqldb.QueryScalar(db, goldSQL)
	if err != nil || goldVal.IsNull() {
		return nil, fmt.Errorf("data: gold query unusable: %w", err)
	}

	correct := g.rng.Float64() >= g.cfg.IncorrectRate
	display, err := g.displayValue(goldVal, correct, db, spec)
	if err != nil {
		return nil, err
	}
	// Avoid the pathological coincidence of the claim value equalling the
	// filter constant: masking would leave an identical token in the
	// sentence and the span would be ambiguous to a reader.
	if spec.FilterVal != "" && display == spec.FilterVal {
		return nil, fmt.Errorf("data: claim value collides with filter constant")
	}

	sentence := nl.RenderSentence(spec, g.lex, nl.RenderOptions{
		Value:         display,
		ColumnPhrase:  colPhrase,
		EntityDisplay: entityDisplay,
		Verb:          nl.ClaimVerbs[g.rng.Intn(len(nl.ClaimVerbs))],
	})
	span, ok := textutil.FindValueSpan(sentence, display)
	if !ok {
		return nil, fmt.Errorf("data: value %q not locatable in %q", display, sentence)
	}
	intro := fmt.Sprintf("This article summarizes data about %s.", ts.noun)
	parts := []string{intro, sentence}
	if hint != "" {
		parts = append(parts, hint)
	}
	context := strings.Join(parts, " ")

	difficulty := kind.Difficulty()
	if entityDisplay != "" {
		difficulty += 0.2
	}
	if colPhrase != "" {
		difficulty += 0.15
	}
	if difficulty > 1 {
		difficulty = 1
	}
	return &claim.Claim{
		ID:       id,
		Sentence: sentence,
		Span:     span,
		Context:  context,
		Value:    display,
		Gold: claim.Gold{
			Query:      goldSQL,
			Correct:    correct,
			Difficulty: difficulty,
		},
	}, nil
}

func (g *generator) drawKind() nl.Kind {
	total := 0
	for _, w := range g.cfg.KindWeights {
		total += w
	}
	n := g.rng.Intn(total)
	for k := nl.KindLookup; k <= nl.KindMode; k++ {
		n -= g.cfg.KindWeights[k]
		if n < 0 {
			return k
		}
	}
	return nl.KindLookup
}

// drawSpec materializes a spec of the given kind over the table, choosing
// hazards. It returns the spec plus the rendering overrides (column phrase,
// entity display) and an optional context hint sentence.
func (g *generator) drawSpec(kind nl.Kind, db *sqldb.Database, ts tableSpec) (spec *nl.Spec, colPhrase, entityDisplay, hint string, err error) {
	tab := db.Table(ts.name)
	if tab == nil || len(tab.Rows) == 0 {
		return nil, "", "", "", fmt.Errorf("data: empty table %q", ts.name)
	}
	noun := ts.noun
	spec = &nl.Spec{Kind: kind, Noun: noun}

	pickMeasure := func() measureSpec {
		return ts.measures[g.rng.Intn(len(ts.measures))]
	}
	entityIdx := tab.ColumnIndex(ts.entity)
	pickEntityVal := func() string {
		row := tab.Rows[g.rng.Intn(len(tab.Rows))]
		return row[entityIdx].Text()
	}

	switch kind {
	case nl.KindLookup:
		m := pickMeasure()
		spec.Column = m.name
		spec.EntityCol = ts.entity
		spec.EntityVal = pickEntityVal()
	case nl.KindCountAll:
		spec.EntityCol = ts.entity
	case nl.KindCount, nl.KindPercent:
		m, val, isText, e := g.drawFilter(tab, ts)
		if e != nil {
			return nil, "", "", "", e
		}
		spec.FilterCol = m
		spec.FilterVal = val
		spec.FilterIsText = isText
		if kind == nl.KindPercent {
			spec.EntityCol = ts.entity
		}
	case nl.KindSum, nl.KindAvg:
		m := pickMeasure()
		spec.Column = m.name
		if g.rng.Float64() < 0.3 {
			fc, val, isText, e := g.drawFilter(tab, ts)
			if e == nil && fc != m.name {
				spec.FilterCol = fc
				spec.FilterVal = val
				spec.FilterIsText = isText
			}
		}
	case nl.KindMin, nl.KindMax, nl.KindDiff:
		m := pickMeasure()
		spec.Column = m.name
	case nl.KindArgMax, nl.KindArgMin:
		m := pickMeasure()
		spec.Column = m.name
		spec.EntityCol = ts.entity
	case nl.KindMode:
		// The most-common value of a categorical (non-entity) text column.
		if len(ts.extraTex) == 0 {
			return nil, "", "", "", fmt.Errorf("data: no categorical column in %q for Mode", ts.name)
		}
		spec.Column = ts.extraTex[g.rng.Intn(len(ts.extraTex))].name
	default:
		return nil, "", "", "", fmt.Errorf("data: unsupported kind %v", kind)
	}

	// Hazard: unit-converted phrasing.
	if spec.Column != "" && g.rng.Float64() < g.cfg.UnitConvertRate {
		if unit, factor, ok := g.lex.ConvertedUnitFor(spec.Column); ok {
			base := g.lex.ColumnUnit(spec.Column)
			full := g.lex.ColumnPhrase(spec.Column)
			colPhrase = strings.Replace(full, base, unit, 1)
			spec.ConvFactor = factor
		}
	}
	// Hazard: underspecified column phrase (only when not unit-converted).
	if colPhrase == "" && spec.Column != "" && g.rng.Float64() < g.cfg.ShortPhraseRate {
		if short := g.lex.ShortPhrase(spec.Column); short != "" {
			colPhrase = short
			hint = fmt.Sprintf("All figures refer to %s.", g.lex.ColumnPhrase(spec.Column))
		}
	}
	// Hazard: entity alias.
	if spec.EntityVal != "" && g.rng.Float64() < g.cfg.AliasRate {
		if aliases := g.lex.AliasesFor(spec.EntityVal); len(aliases) > 0 {
			entityDisplay = aliases[g.rng.Intn(len(aliases))]
		}
	}
	return spec, colPhrase, entityDisplay, hint, nil
}

// drawFilter picks an equality filter over a small-cardinality integer
// measure column, using a value that actually occurs.
func (g *generator) drawFilter(tab *sqldb.Table, ts tableSpec) (col, val string, isText bool, err error) {
	var candidates []measureSpec
	for _, m := range ts.measures {
		if m.integer && m.hi-m.lo <= 110 {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return "", "", false, fmt.Errorf("data: no filterable column in %q", ts.name)
	}
	m := candidates[g.rng.Intn(len(candidates))]
	idx := tab.ColumnIndex(m.name)
	row := tab.Rows[g.rng.Intn(len(tab.Rows))]
	return m.name, row[idx].String(), false, nil
}

// displayValue renders the claim value: the gold value for correct claims, a
// perturbed value for incorrect ones. Perturbations stay (mostly) within the
// same order of magnitude, matching the anti-knowledge-base observation the
// paper cites: wrong numbers in text tend to be close to the truth.
func (g *generator) displayValue(gold sqldb.Value, correct bool, db *sqldb.Database, spec *nl.Spec) (string, error) {
	if gold.Kind() == sqldb.KindText {
		if correct {
			return gold.Text(), nil
		}
		// Draw a wrong value from the column the gold value came from: the
		// entity column for Arg kinds, the categorical column for Mode.
		col := spec.EntityCol
		if col == "" {
			col = spec.Column
		}
		tables := nl.SchemaFromDatabase(db).TablesWithColumn(col)
		if len(tables) == 0 {
			return "", fmt.Errorf("data: no table for column %q", col)
		}
		uniq, err := db.Table(tables[0]).UniqueValues(col)
		if err != nil {
			return "", err
		}
		for tries := 0; tries < 20; tries++ {
			v := uniq[g.rng.Intn(len(uniq))]
			if v.Text() != gold.Text() {
				return v.Text(), nil
			}
		}
		return "", fmt.Errorf("data: cannot draw a wrong textual value")
	}

	f, ok := gold.AsFloat()
	if !ok {
		return "", fmt.Errorf("data: gold value %q is neither numeric nor text", gold.String())
	}
	prec := 0
	if f != float64(int64(f)) {
		prec = 1 + g.rng.Intn(2)
	}
	if correct {
		return textutil.FormatNumber(textutil.RoundTo(f, prec)), nil
	}
	for tries := 0; tries < 50; tries++ {
		factor := 1.15 + g.rng.Float64()*1.3
		if g.rng.Intn(2) == 0 {
			factor = 1 / factor
		}
		p := f * factor
		if f == 0 {
			p = float64(1 + g.rng.Intn(5))
		}
		display := textutil.FormatNumber(textutil.RoundTo(p, prec))
		if !textutil.RoundMatches(display, f) {
			return display, nil
		}
	}
	return "", fmt.Errorf("data: cannot perturb value %v", f)
}
