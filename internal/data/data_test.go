package data

import (
	"strings"
	"testing"

	"repro/internal/claim"
	"repro/internal/nl"
	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// validateGold checks the generator's core invariants on a corpus: every
// gold query executes to a single cell, correct claims round-match their
// gold value, incorrect claims do not, and the claim value sits at the
// recorded span.
func validateGold(t *testing.T, docs []*claim.Document) {
	t.Helper()
	for _, d := range docs {
		for _, c := range d.Claims {
			v, err := sqldb.QueryScalar(d.Data, c.Gold.Query)
			if err != nil {
				t.Fatalf("%s: gold query %q: %v", c.ID, c.Gold.Query, err)
			}
			if c.IsNumeric() {
				f, ok := v.AsFloat()
				if !ok {
					t.Fatalf("%s: numeric claim with non-numeric gold %v", c.ID, v)
				}
				if got := textutil.RoundMatches(c.Value, f); got != c.Gold.Correct {
					t.Errorf("%s: RoundMatches(%q, %v) = %v, labelled correct=%v (query %s)",
						c.ID, c.Value, f, got, c.Gold.Correct, c.Gold.Query)
				}
			} else {
				if got := v.Text() == c.Value; got != c.Gold.Correct {
					t.Errorf("%s: textual match %q vs %q = %v, labelled %v",
						c.ID, c.Value, v.Text(), got, c.Gold.Correct)
				}
			}
			if textutil.SpanText(c.Sentence, c.Span) == "" {
				t.Errorf("%s: empty span text in %q", c.ID, c.Sentence)
			}
			if !strings.Contains(c.Context, c.Sentence) {
				t.Errorf("%s: context does not contain sentence", c.ID)
			}
			masked, mctx := c.Masked()
			// Token-level leak check: the claim-value token must be gone
			// (substring matches like "199" inside the year "1999" are
			// fine).
			for _, tok := range textutil.Tokenize(masked) {
				if strings.Trim(tok, ".,;:") == c.Value {
					t.Errorf("%s: masked sentence leaks value %q: %q", c.ID, c.Value, masked)
				}
			}
			if !strings.Contains(mctx, masked) {
				t.Errorf("%s: masked context missing masked sentence", c.ID)
			}
		}
	}
}

func TestAggCheckerShape(t *testing.T) {
	docs, err := AggChecker(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 56 {
		t.Fatalf("docs = %d", len(docs))
	}
	if n := claim.TotalClaims(docs); n != 392 {
		t.Fatalf("claims = %d want 392", n)
	}
	domains := map[string]int{}
	for _, d := range docs {
		domains[d.Domain]++
	}
	for _, dom := range []string{Domain538, DomainStackOverflow, DomainNYTimes, DomainWikipedia} {
		if domains[dom] != 14 {
			t.Errorf("domain %s has %d docs", dom, domains[dom])
		}
	}
	inc := claim.CountIncorrect(docs)
	if inc < 25 || inc > 95 {
		t.Errorf("incorrect claims = %d, want near 15%% of 392", inc)
	}
	validateGold(t, docs)
}

func TestAggCheckerDeterministic(t *testing.T) {
	a, err := AggChecker(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AggChecker(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Claims {
			ca, cb := a[i].Claims[j], b[i].Claims[j]
			if ca.Sentence != cb.Sentence || ca.Gold.Query != cb.Gold.Query || ca.Gold.Correct != cb.Gold.Correct {
				t.Fatalf("nondeterministic generation at %s", ca.ID)
			}
		}
	}
}

func TestTabFactShape(t *testing.T) {
	docs, err := TabFact(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 28 {
		t.Fatalf("docs = %d", len(docs))
	}
	if n := claim.TotalClaims(docs); n != 100 {
		t.Fatalf("claims = %d want 100", n)
	}
	validateGold(t, docs)
}

func TestWikiTextShape(t *testing.T) {
	docs, err := WikiText(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 14 {
		t.Fatalf("docs = %d", len(docs))
	}
	if n := claim.TotalClaims(docs); n != 50 {
		t.Fatalf("claims = %d want 50", n)
	}
	for _, d := range docs {
		for _, c := range d.Claims {
			if c.IsNumeric() {
				t.Errorf("%s: WikiText claim is numeric: %q", c.ID, c.Value)
			}
		}
	}
	validateGold(t, docs)
}

func TestUnitConvPairing(t *testing.T) {
	aligned, err := UnitConv(5, true)
	if err != nil {
		t.Fatal(err)
	}
	converted, err := UnitConv(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if claim.TotalClaims(aligned) != 20 || claim.TotalClaims(converted) != 20 {
		t.Fatalf("claims = %d / %d", claim.TotalClaims(aligned), claim.TotalClaims(converted))
	}
	validateGold(t, aligned)
	validateGold(t, converted)
	// Paired documents cover the same claims; converted ones include at
	// least some unit-converted gold queries (multiplication factor).
	convCount := 0
	for i := range converted {
		for j := range converted[i].Claims {
			if strings.Contains(converted[i].Claims[j].Gold.Query, "*") &&
				!strings.Contains(aligned[i].Claims[j].Gold.Query, "*") {
				convCount++
			}
		}
	}
	if convCount == 0 {
		t.Error("no unit-converted gold queries in converted variant")
	}
}

func TestJoinBenchNormalization(t *testing.T) {
	flat, norm, err := JoinBench(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != len(norm) {
		t.Fatalf("doc counts differ: %d vs %d", len(flat), len(norm))
	}
	validateGold(t, flat)
	validateGold(t, norm)
	joins := 0
	for i := range norm {
		if len(norm[i].Data.Tables()) < 2 {
			t.Errorf("doc %s not normalized", norm[i].ID)
		}
		for j := range norm[i].Claims {
			fc, nc := flat[i].Claims[j], norm[i].Claims[j]
			if fc.Sentence != nc.Sentence || fc.Gold.Correct != nc.Gold.Correct {
				t.Errorf("claim text/label changed under normalization: %s", nc.ID)
			}
			if strings.Contains(nc.Gold.Query, "JOIN") {
				joins++
			}
			// Both gold queries must produce the same value.
			fv, err1 := sqldb.QueryScalar(flat[i].Data, fc.Gold.Query)
			nv, err2 := sqldb.QueryScalar(norm[i].Data, nc.Gold.Query)
			if err1 != nil || err2 != nil {
				t.Fatalf("gold exec: %v / %v", err1, err2)
			}
			if fv.String() != nv.String() {
				t.Errorf("%s: flat=%v norm=%v", nc.ID, fv, nv)
			}
		}
	}
	if joins == 0 {
		t.Error("no join queries in JoinBench gold")
	}
}

func TestNormalizeTableTableCount(t *testing.T) {
	// The paper's JoinBench has 23 tables from three schemas; our three
	// specs normalize to 8 + 5 + 10 = 23.
	total := 0
	for _, name := range []string{"airlines", "drinks", "so_survey"} {
		spec := corpusTables[name]
		tab := BuildTable(spec, seededRNG(1), 0)
		db, err := NormalizeTable(tab, name+"_n")
		if err != nil {
			t.Fatal(err)
		}
		total += len(db.Tables())
	}
	if total != 23 {
		t.Errorf("normalized table count = %d want 23", total)
	}
}

func TestBuildDatabaseUnknownTable(t *testing.T) {
	if _, err := BuildDatabase("x", seededRNG(1), 0, "nope"); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestCorpusLexiconCoverage(t *testing.T) {
	// Every corpus column must have a lexicon phrase so sentences render
	// with real English rather than raw headers.
	lex := nl.DefaultLexicon()
	for name, spec := range corpusTables {
		for _, m := range spec.measures {
			if _, ok := lex.Columns[strings.ToLower(m.name)]; !ok {
				t.Errorf("table %s column %s missing from lexicon", name, m.name)
			}
		}
		if lex.TableNoun(spec.name) == spec.name && spec.name != spec.noun {
			t.Errorf("table %s missing noun in lexicon", name)
		}
	}
}

func TestGenerateHazardRates(t *testing.T) {
	docs, err := Generate(GenConfig{
		Seed: 9, Docs: 20, ClaimsPerDoc: 6, IncorrectRate: 0.2,
		AliasRate: 1.0, Domains: []string{Domain538},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With AliasRate 1, lookup claims over aliased entities must render
	// the alias, which then must NOT appear verbatim in the data.
	aliased := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			for _, alias := range []string{"United Airlines", "Delta Air Lines", "the United States", "America", "Britain"} {
				if strings.Contains(c.Sentence, alias) {
					aliased++
				}
			}
		}
	}
	if aliased == 0 {
		t.Error("alias hazard never materialized at rate 1.0")
	}
	validateGold(t, docs)
}

func TestNormalizeErrors(t *testing.T) {
	// Multi-table document rejected.
	db, err := BuildDatabase("multi", seededRNG(1), 0, "airlines", "drinks")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NormalizeDocument(&claim.Document{ID: "x", Data: db}); err == nil {
		t.Error("expected error for multi-table document")
	}
	// Table without an entity column rejected.
	raw := sqldb.NewTable("noent", "v1", "v2")
	raw.MustAppendRow(sqldb.Int(1), sqldb.Int(2))
	if _, err := NormalizeTable(raw, "n"); err == nil {
		t.Error("expected error for entity-less table")
	}
}

func TestTableNamesComplete(t *testing.T) {
	names := TableNames()
	if len(names) != len(corpusTables) {
		t.Errorf("TableNames = %d entries want %d", len(names), len(corpusTables))
	}
}

func TestGenerateUnknownDomain(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1, Docs: 1, ClaimsPerDoc: 1, Domains: []string{"Mars"}}); err == nil {
		t.Error("expected error for unknown domain")
	}
}
