// Package schedule implements CEDAR's cost-based scheduling (Section 6):
// the expected-cost and accuracy models of Theorems 6.1/6.2, Pareto pruning,
// the dynamic-programming optimizer of Algorithm 10 over method subsets and
// per-method retry counts, and the final schedule selection rules.
package schedule

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// MethodStats is the profiling record of one verification method: expected
// cost per claim attempt and success probability, estimated on labeled
// samples (Section 6.1).
type MethodStats struct {
	// Name identifies the verification method.
	Name string
	// Cost is the expected dollar fee of one attempt on one claim.
	Cost float64
	// Accuracy is the probability that one attempt verifies the claim.
	Accuracy float64
	// Wall is the average simulated latency of one attempt, used for
	// throughput reporting (not part of the optimization objective).
	Wall time.Duration
}

// Step is one schedule entry: a method applied with a number of tries.
type Step struct {
	Method string
	Tries  int
}

// Schedule is an ordered list of steps with its modeled metrics.
type Schedule struct {
	Steps []Step
	// Cost is the modeled expected cost per claim (Theorem 6.1).
	Cost float64
	// Accuracy is the modeled verification probability (Theorem 6.2).
	Accuracy float64
}

// failProb returns 1 - Accuracy guarded against float drift.
func (s *Schedule) failProb() float64 {
	f := 1 - s.Accuracy
	if f < 0 {
		return 0
	}
	return f
}

// DistinctMethods counts steps with at least one try.
func (s *Schedule) DistinctMethods() int {
	n := 0
	for _, st := range s.Steps {
		if st.Tries > 0 {
			n++
		}
	}
	return n
}

// TotalTries sums tries across steps.
func (s *Schedule) TotalTries() int {
	n := 0
	for _, st := range s.Steps {
		n += st.Tries
	}
	return n
}

// String renders the schedule compactly: "m1 x2 -> m2 x1".
func (s *Schedule) String() string {
	var parts []string
	for _, st := range s.Steps {
		if st.Tries > 0 {
			parts = append(parts, fmt.Sprintf("%s x%d", st.Method, st.Tries))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " -> ") + fmt.Sprintf("  [cost=$%.4f acc=%.3f]", s.Cost, s.Accuracy)
}

// append extends a schedule with k tries of a method, updating the modeled
// metrics per Theorems 6.1/6.2. With per-try success probability A and cost
// C, the k tries contribute expected cost f * C * (1-(1-A)^k)/A (a geometric
// series over failures so far) and multiply the failure probability by
// (1-A)^k.
func (s *Schedule) append(m MethodStats, k int) Schedule {
	out := Schedule{
		Steps:    make([]Step, 0, len(s.Steps)+1),
		Cost:     s.Cost,
		Accuracy: s.Accuracy,
	}
	out.Steps = append(out.Steps, s.Steps...)
	out.Steps = append(out.Steps, Step{Method: m.Name, Tries: k})
	if k == 0 {
		return out
	}
	f := s.failProb()
	failK := math.Pow(1-m.Accuracy, float64(k))
	var expectTries float64
	if m.Accuracy > 0 {
		expectTries = (1 - failK) / m.Accuracy
	} else {
		expectTries = float64(k)
	}
	out.Cost = s.Cost + f*m.Cost*expectTries
	out.Accuracy = 1 - f*failK
	return out
}

// Cost computes the expected cost of an arbitrary attempt sequence (one
// entry per try) under Theorem 6.1; exposed for model validation tests.
func Cost(tries []MethodStats) float64 {
	cost, fail := 0.0, 1.0
	for _, t := range tries {
		cost += fail * t.Cost
		fail *= 1 - t.Accuracy
	}
	return cost
}

// Accuracy computes the success probability of an attempt sequence under
// Theorem 6.2.
func Accuracy(tries []MethodStats) float64 {
	fail := 1.0
	for _, t := range tries {
		fail *= 1 - t.Accuracy
	}
	return 1 - fail
}

// ErrNoMethods indicates Optimize was called with an empty stats list.
var ErrNoMethods = errors.New("schedule: no verification methods")

// Optimize implements Algorithm 10: dynamic programming over subsets of
// verification methods, appending each candidate last method with every
// retry count 0..maxTries, and pruning Pareto-dominated schedules. It
// returns the Pareto-optimal schedules over the full method set, sorted by
// ascending cost.
func Optimize(stats []MethodStats, maxTries int) ([]Schedule, error) {
	n := len(stats)
	if n == 0 {
		return nil, ErrNoMethods
	}
	if n > 16 {
		return nil, fmt.Errorf("schedule: %d methods exceed the supported maximum of 16", n)
	}
	if maxTries < 1 {
		maxTries = 1
	}
	// dp[mask] holds Pareto-optimal schedules using exactly the methods in
	// mask as steps (steps may have zero tries).
	dp := make([][]Schedule, 1<<n)
	// Initialization: single-method schedules with 0..m tries.
	for i := 0; i < n; i++ {
		var list []Schedule
		empty := Schedule{}
		for k := 0; k <= maxTries; k++ {
			list = prune(list, empty.append(stats[i], k))
		}
		dp[1<<i] = list
	}
	// Build subsets of increasing cardinality.
	for mask := 1; mask < 1<<n; mask++ {
		if bitsSet(mask) < 2 {
			continue
		}
		var list []Schedule
		for last := 0; last < n; last++ {
			if mask&(1<<last) == 0 {
				continue
			}
			rest := mask &^ (1 << last)
			for _, p := range dp[rest] {
				for k := 0; k <= maxTries; k++ {
					list = prune(list, p.append(stats[last], k))
				}
			}
		}
		dp[mask] = list
	}
	out := dp[(1<<n)-1]
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out, nil
}

func bitsSet(mask int) int {
	n := 0
	for mask != 0 {
		mask &= mask - 1
		n++
	}
	return n
}

// prune inserts cand into a Pareto set over (cost down, accuracy up),
// discarding dominated schedules — the Prune function of Algorithm 10. On
// exact metric ties the schedule using more distinct methods is kept, so the
// diversity preference of SelectSchedule can still find it on the frontier.
func prune(list []Schedule, cand Schedule) []Schedule {
	const eps = 1e-12
	for i, s := range list {
		if s.Cost <= cand.Cost+eps && s.Accuracy >= cand.Accuracy-eps {
			// cand is dominated or ties; on an exact tie prefer diversity.
			if s.Cost >= cand.Cost-eps && s.Accuracy <= cand.Accuracy+eps &&
				cand.DistinctMethods() > s.DistinctMethods() {
				list[i] = cand
			}
			return list
		}
	}
	out := list[:0]
	for _, s := range list {
		if cand.Cost <= s.Cost+eps && cand.Accuracy >= s.Accuracy-eps {
			continue // cand dominates s
		}
		out = append(out, s)
	}
	return append(out, cand)
}

// Select implements the final SelectSchedule rules: restrict to schedules
// meeting the accuracy constraint (or, failing that, the maximal-accuracy
// ones); among those select minimal cost; among near-minimal-cost schedules
// prefer the one using the most distinct methods (diversity compensates for
// the independence assumption of the accuracy model). Applying the
// diversity preference as a tie-break at minimal cost — rather than as a
// global filter — preserves the monotone threshold-to-cost trade-off that
// Figure 5 sweeps.
func Select(pareto []Schedule, minAccuracy float64) (*Schedule, error) {
	if len(pareto) == 0 {
		return nil, ErrNoMethods
	}
	var eligible []Schedule
	for _, s := range pareto {
		if s.Accuracy >= minAccuracy {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		best := pareto[0].Accuracy
		for _, s := range pareto {
			if s.Accuracy > best {
				best = s.Accuracy
			}
		}
		for _, s := range pareto {
			if s.Accuracy >= best-1e-12 {
				eligible = append(eligible, s)
			}
		}
	}
	minCost := eligible[0].Cost
	for _, s := range eligible {
		if s.Cost < minCost {
			minCost = s.Cost
		}
	}
	// Near-minimal band: within 1% (or an absolute epsilon for tiny costs).
	band := minCost*1.01 + 1e-12
	var chosen *Schedule
	for i := range eligible {
		s := &eligible[i]
		if s.Cost > band {
			continue
		}
		if chosen == nil ||
			s.DistinctMethods() > chosen.DistinctMethods() ||
			(s.DistinctMethods() == chosen.DistinctMethods() && s.Cost < chosen.Cost) {
			chosen = s
		}
	}
	if chosen == nil {
		return nil, ErrNoMethods
	}
	out := *chosen
	return &out, nil
}

// Plan is the convenience composition Optimize + Select.
func Plan(stats []MethodStats, maxTries int, minAccuracy float64) (*Schedule, error) {
	pareto, err := Optimize(stats, maxTries)
	if err != nil {
		return nil, err
	}
	return Select(pareto, minAccuracy)
}

// SelectBudget is the inverse selection rule: among Pareto-optimal
// schedules whose expected per-claim cost stays within the budget, pick the
// one with maximal modeled accuracy (diversity as tie-break, minimal cost
// after that). The paper takes accuracy targets as input rather than a cost
// budget (Section 4); this is the complementary knob for deployments with a
// hard spending limit. A budget below the cheapest schedule falls back to
// the cheapest one.
func SelectBudget(pareto []Schedule, maxCostPerClaim float64) (*Schedule, error) {
	if len(pareto) == 0 {
		return nil, ErrNoMethods
	}
	var eligible []Schedule
	for _, s := range pareto {
		if s.Cost <= maxCostPerClaim {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		cheapest := pareto[0]
		for _, s := range pareto {
			if s.Cost < cheapest.Cost {
				cheapest = s
			}
		}
		out := cheapest
		return &out, nil
	}
	best := eligible[0]
	for _, s := range eligible[1:] {
		switch {
		case s.Accuracy > best.Accuracy+1e-12:
			best = s
		case s.Accuracy >= best.Accuracy-1e-12 && s.DistinctMethods() > best.DistinctMethods():
			best = s
		case s.Accuracy >= best.Accuracy-1e-12 && s.DistinctMethods() == best.DistinctMethods() && s.Cost < best.Cost:
			best = s
		}
	}
	out := best
	return &out, nil
}

// PlanBudget is the convenience composition Optimize + SelectBudget.
func PlanBudget(stats []MethodStats, maxTries int, maxCostPerClaim float64) (*Schedule, error) {
	pareto, err := Optimize(stats, maxTries)
	if err != nil {
		return nil, err
	}
	return SelectBudget(pareto, maxCostPerClaim)
}
