package schedule

import "fmt"

// RouteStage prices the routing stage of DESIGN.md §16 inside the DP
// scheduler: routing a sub-claim costs Fee and is right with probability
// Accuracy, so a verification schedule that runs after routing has expected
// accuracy (schedule accuracy × Accuracy) and expected cost (schedule cost
// + Fee) — a wrongly-routed sub-claim pays for its verification but cannot
// produce the right verdict, which is exactly the multiplicative structure
// Theorem 6.1 already assumes between methods.
type RouteStage struct {
	// Fee is the dollar cost of one routing decision.
	Fee float64
	// Accuracy is the probability the decision binds the right table;
	// values outside (0, 1] disable the adjustment (treated as 1).
	Accuracy float64
}

// accuracy clamps the modeled routing accuracy into (0, 1].
func (rs RouteStage) accuracy() float64 {
	if rs.Accuracy <= 0 || rs.Accuracy > 1 {
		return 1
	}
	return rs.Accuracy
}

// AdjustedTarget lifts a post-routing accuracy target to the target the
// verification schedule itself must hit: to deliver `target` end to end,
// verification must reach target / Accuracy. The result caps at 1 — when
// routing alone eats the slack, the best the planner can do is the most
// accurate verification schedule available.
func (rs RouteStage) AdjustedTarget(target float64) float64 {
	t := target / rs.accuracy()
	if t > 1 {
		return 1
	}
	return t
}

// Apply prices the stage into a planned verification schedule, returning
// the end-to-end routed schedule: cost gains the routing fee, accuracy is
// discounted by the wrong-routing risk.
func (rs RouteStage) Apply(s Schedule) Schedule {
	s.Cost += rs.Fee
	s.Accuracy *= rs.accuracy()
	return s
}

// PlanRouted plans a verification schedule whose routed end-to-end accuracy
// meets minAccuracy: it lifts the target by the wrong-routing risk, runs the
// usual Pareto optimization and selection, and prices the stage into the
// winner. The error cases are Plan's, plus an impossible lift (the adjusted
// target exceeds every achievable schedule).
func PlanRouted(stats []MethodStats, maxTries int, minAccuracy float64, rs RouteStage) (*Schedule, error) {
	adjusted := rs.AdjustedTarget(minAccuracy)
	plan, err := Plan(stats, maxTries, adjusted)
	if err != nil {
		return nil, fmt.Errorf("routed schedule (target %.4f lifted to %.4f): %w", minAccuracy, adjusted, err)
	}
	routed := rs.Apply(*plan)
	return &routed, nil
}
