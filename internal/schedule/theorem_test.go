package schedule

import (
	"math"
	"math/rand"
	"testing"
)

// TestTheorem64ConsecutiveRetriesSuffice validates the paper's Theorem 6.4
// empirically: restricting the search space to consecutive retries of the
// same method (what the DP explores) never loses against arbitrary
// interleavings. For random 2-method instances we enumerate every sequence
// of up to 4 tries (with interleaving allowed) and check that for each
// interleaved sequence there is a consecutive schedule with at least its
// accuracy and at most its cost.
func TestTheorem64ConsecutiveRetriesSuffice(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 200; trial++ {
		methods := []MethodStats{
			{Name: "A", Cost: 0.001 + rng.Float64(), Accuracy: 0.05 + 0.9*rng.Float64()},
			{Name: "B", Cost: 0.001 + rng.Float64(), Accuracy: 0.05 + 0.9*rng.Float64()},
		}
		// All sequences over {A, B} of length up to 4.
		var sequences [][]MethodStats
		var build func(cur []MethodStats)
		build = func(cur []MethodStats) {
			if len(cur) > 0 {
				sequences = append(sequences, append([]MethodStats{}, cur...))
			}
			if len(cur) == 4 {
				return
			}
			for _, m := range methods {
				build(append(cur, m))
			}
		}
		build(nil)

		// Consecutive schedules: A^i B^j and B^j A^i for i,j in 0..4.
		type point struct{ cost, acc float64 }
		var consecutive []point
		for i := 0; i <= 4; i++ {
			for j := 0; j <= 4; j++ {
				s1 := Schedule{}
				s1 = s1.append(methods[0], i)
				s1 = s1.append(methods[1], j)
				consecutive = append(consecutive, point{s1.Cost, s1.Accuracy})
				s2 := Schedule{}
				s2 = s2.append(methods[1], j)
				s2 = s2.append(methods[0], i)
				consecutive = append(consecutive, point{s2.Cost, s2.Accuracy})
			}
		}

		for _, seq := range sequences {
			cost, acc := Cost(seq), Accuracy(seq)
			dominated := false
			for _, p := range consecutive {
				if p.cost <= cost+1e-12 && p.acc >= acc-1e-12 {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("trial %d: interleaved sequence beats all consecutive schedules (cost=%v acc=%v, methods=%+v)",
					trial, cost, acc, methods)
			}
		}
	}
}

// TestTheorem61ExpectedCostSimulation validates the cost model of Theorem
// 6.1 against Monte-Carlo simulation of the multi-stage process.
func TestTheorem61ExpectedCostSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	seq := []MethodStats{
		{Cost: 1, Accuracy: 0.5},
		{Cost: 3, Accuracy: 0.7},
		{Cost: 10, Accuracy: 0.9},
	}
	const n = 200000
	total := 0.0
	successes := 0
	for i := 0; i < n; i++ {
		for _, m := range seq {
			total += m.Cost
			if rng.Float64() < m.Accuracy {
				successes++
				break
			}
		}
	}
	simCost := total / n
	simAcc := float64(successes) / n
	if math.Abs(simCost-Cost(seq)) > 0.05 {
		t.Errorf("simulated cost %v vs model %v", simCost, Cost(seq))
	}
	if math.Abs(simAcc-Accuracy(seq)) > 0.01 {
		t.Errorf("simulated accuracy %v vs model %v", simAcc, Accuracy(seq))
	}
}
