package schedule

import (
	"math"
	"testing"
)

func routeTestStats() []MethodStats {
	return []MethodStats{
		{Name: "direct", Accuracy: 0.9, Cost: 0.001},
		{Name: "agent", Accuracy: 0.97, Cost: 0.01},
	}
}

func TestRouteStageAccuracyClamp(t *testing.T) {
	for _, a := range []float64{-1, 0, 1.5} {
		rs := RouteStage{Accuracy: a}
		if got := rs.AdjustedTarget(0.9); got != 0.9 {
			t.Errorf("accuracy %v: adjusted target %v, want identity", a, got)
		}
	}
}

func TestRouteStageAdjustedTarget(t *testing.T) {
	rs := RouteStage{Accuracy: 0.96}
	if got, want := rs.AdjustedTarget(0.9), 0.9/0.96; math.Abs(got-want) > 1e-12 {
		t.Errorf("adjusted target %v, want %v", got, want)
	}
	if got := rs.AdjustedTarget(0.99); got != 1 {
		t.Errorf("lift past 1 must cap at 1, got %v", got)
	}
}

func TestRouteStageApply(t *testing.T) {
	rs := RouteStage{Fee: 0.0001, Accuracy: 0.96}
	s := Schedule{Cost: 0.01, Accuracy: 0.95}
	out := rs.Apply(s)
	if math.Abs(out.Cost-0.0101) > 1e-12 || math.Abs(out.Accuracy-0.95*0.96) > 1e-12 {
		t.Fatalf("applied schedule %+v", out)
	}
	if s.Cost != 0.01 {
		t.Fatal("Apply mutated its input")
	}
}

func TestPlanRouted(t *testing.T) {
	stats := routeTestStats()
	rs := RouteStage{Fee: 0.0001, Accuracy: 0.96}
	base, err := Plan(stats, 3, rs.AdjustedTarget(0.9))
	if err != nil {
		t.Fatal(err)
	}
	routed, err := PlanRouted(stats, 3, 0.9, rs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(routed.Cost-(base.Cost+rs.Fee)) > 1e-12 {
		t.Errorf("routed cost %v, want base %v + fee", routed.Cost, base.Cost)
	}
	if math.Abs(routed.Accuracy-base.Accuracy*0.96) > 1e-12 {
		t.Errorf("routed accuracy %v, want discounted %v", routed.Accuracy, base.Accuracy*0.96)
	}
	if routed.Accuracy < 0.9*0.99 {
		t.Errorf("routed end-to-end accuracy %v far below target", routed.Accuracy)
	}
}

func TestPlanRoutedNoMethods(t *testing.T) {
	if _, err := PlanRouted(nil, 3, 0.9, RouteStage{Accuracy: 0.96}); err == nil {
		t.Fatal("expected error for empty method stats")
	}
}
