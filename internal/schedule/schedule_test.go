package schedule

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func stats3() []MethodStats {
	return []MethodStats{
		{Name: "cheap", Cost: 0.001, Accuracy: 0.6, Wall: time.Second},
		{Name: "mid", Cost: 0.01, Accuracy: 0.8, Wall: 3 * time.Second},
		{Name: "strong", Cost: 0.05, Accuracy: 0.95, Wall: 10 * time.Second},
	}
}

func TestCostAndAccuracyModels(t *testing.T) {
	// Theorem 6.1/6.2 by hand for a two-try sequence.
	seq := []MethodStats{
		{Cost: 1, Accuracy: 0.5},
		{Cost: 10, Accuracy: 0.9},
	}
	wantCost := 1 + 0.5*10.0
	if got := Cost(seq); math.Abs(got-wantCost) > 1e-12 {
		t.Errorf("Cost = %v want %v", got, wantCost)
	}
	wantAcc := 1 - 0.5*0.1
	if got := Accuracy(seq); math.Abs(got-wantAcc) > 1e-12 {
		t.Errorf("Accuracy = %v want %v", got, wantAcc)
	}
}

func TestAppendMatchesExplicitSequence(t *testing.T) {
	// Schedule.append's geometric-series shortcut must agree with the
	// explicit per-try expansion.
	m1 := MethodStats{Name: "a", Cost: 0.3, Accuracy: 0.4}
	m2 := MethodStats{Name: "b", Cost: 2, Accuracy: 0.85}
	s := Schedule{}
	s = s.append(m1, 3)
	s = s.append(m2, 2)
	var seq []MethodStats
	for i := 0; i < 3; i++ {
		seq = append(seq, m1)
	}
	for i := 0; i < 2; i++ {
		seq = append(seq, m2)
	}
	if math.Abs(s.Cost-Cost(seq)) > 1e-12 {
		t.Errorf("append cost %v vs explicit %v", s.Cost, Cost(seq))
	}
	if math.Abs(s.Accuracy-Accuracy(seq)) > 1e-12 {
		t.Errorf("append accuracy %v vs explicit %v", s.Accuracy, Accuracy(seq))
	}
}

func TestAppendZeroTriesIsNeutral(t *testing.T) {
	s := Schedule{}
	s = s.append(MethodStats{Name: "a", Cost: 1, Accuracy: 0.5}, 0)
	if s.Cost != 0 || s.Accuracy != 0 {
		t.Errorf("zero tries changed metrics: %+v", s)
	}
}

func TestOptimizeParetoProperties(t *testing.T) {
	pareto, err := Optimize(stats3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pareto) == 0 {
		t.Fatal("empty Pareto set")
	}
	// Sorted by cost; accuracy must be strictly increasing along the
	// frontier (otherwise a schedule would be dominated).
	for i := 1; i < len(pareto); i++ {
		if pareto[i].Cost < pareto[i-1].Cost {
			t.Fatal("not sorted by cost")
		}
		if pareto[i].Accuracy <= pareto[i-1].Accuracy+1e-15 {
			t.Errorf("dominated schedule on frontier: %v then %v", pareto[i-1], pareto[i])
		}
	}
}

// TestOptimizeMatchesBruteForce compares the DP against brute-force
// enumeration of all method orders and retry counts for small instances.
func TestOptimizeMatchesBruteForce(t *testing.T) {
	stats := []MethodStats{
		{Name: "a", Cost: 0.002, Accuracy: 0.55},
		{Name: "b", Cost: 0.02, Accuracy: 0.75},
		{Name: "c", Cost: 0.09, Accuracy: 0.97},
	}
	maxTries := 2
	// Brute force: all permutations, all tries vectors.
	var best []Schedule
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		for t1 := 0; t1 <= maxTries; t1++ {
			for t2 := 0; t2 <= maxTries; t2++ {
				for t3 := 0; t3 <= maxTries; t3++ {
					var seq []MethodStats
					tries := []int{t1, t2, t3}
					s := Schedule{}
					for i, p := range perm {
						s = s.append(stats[p], tries[i])
						for k := 0; k < tries[i]; k++ {
							seq = append(seq, stats[p])
						}
					}
					best = prune(best, s)
				}
			}
		}
	}
	pareto, err := Optimize(stats, maxTries)
	if err != nil {
		t.Fatal(err)
	}
	// Every brute-force Pareto point must be matched (same cost/accuracy)
	// by the DP frontier and vice versa.
	match := func(a, b []Schedule) {
		for _, s := range a {
			found := false
			for _, o := range b {
				if math.Abs(s.Cost-o.Cost) < 1e-9 && math.Abs(s.Accuracy-o.Accuracy) < 1e-9 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("frontier point missing: %v", s)
			}
		}
	}
	match(best, pareto)
	match(pareto, best)
}

func TestSelectAccuracyConstraint(t *testing.T) {
	pareto, err := Optimize(stats3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Select(pareto, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if s.Accuracy < 0.99 {
		t.Errorf("selected accuracy %v below constraint", s.Accuracy)
	}
	// A lower constraint must never cost more.
	cheap, err := Select(pareto, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Cost > s.Cost {
		t.Errorf("lower constraint costs more: %v vs %v", cheap.Cost, s.Cost)
	}
}

func TestSelectUnreachableAccuracy(t *testing.T) {
	pareto, err := Optimize(stats3(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Impossible constraint: fall back to maximal accuracy.
	s, err := Select(pareto, 0.999999999)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, p := range pareto {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	if math.Abs(s.Accuracy-best) > 1e-12 {
		t.Errorf("fallback accuracy %v, maximal %v", s.Accuracy, best)
	}
}

func TestSelectPrefersDiverseMethods(t *testing.T) {
	// Two methods with identical stats: repeating one or mixing both gives
	// identical modeled metrics, but Select must prefer the mix
	// (Section 6.4's diversity rule).
	stats := []MethodStats{
		{Name: "a", Cost: 0.01, Accuracy: 0.7},
		{Name: "b", Cost: 0.01, Accuracy: 0.7},
	}
	pareto, err := Optimize(stats, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Select(pareto, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s.DistinctMethods() < 2 {
		t.Errorf("expected diverse schedule, got %v", s)
	}
}

func TestCheaperMethodsFirst(t *testing.T) {
	// With a loose constraint the optimizer must start with the cheap
	// method — the core cost-saving behaviour of multi-stage verification.
	s, err := Plan(stats3(), 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	first := ""
	for _, st := range s.Steps {
		if st.Tries > 0 {
			first = st.Method
			break
		}
	}
	if first != "cheap" {
		t.Errorf("first method = %q, schedule %v", first, s)
	}
}

// Theorem 6.3 (principle of optimality): improving a prefix never worsens
// the whole schedule — checked as a property over random instances.
func TestPrefixReplacementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		mk := func() MethodStats {
			return MethodStats{Cost: 0.001 + rng.Float64(), Accuracy: 0.05 + 0.9*rng.Float64()}
		}
		prefixA := []MethodStats{mk(), mk()}
		prefixB := []MethodStats{mk(), mk()}
		suffix := []MethodStats{mk(), mk(), mk()}
		costA, accA := Cost(prefixA), Accuracy(prefixA)
		costB, accB := Cost(prefixB), Accuracy(prefixB)
		if !(costB <= costA && accB >= accA) {
			return true // precondition of the theorem not met; skip
		}
		fullA := Cost(append(append([]MethodStats{}, prefixA...), suffix...))
		fullB := Cost(append(append([]MethodStats{}, prefixB...), suffix...))
		accFullA := Accuracy(append(append([]MethodStats{}, prefixA...), suffix...))
		accFullB := Accuracy(append(append([]MethodStats{}, prefixB...), suffix...))
		return fullB <= fullA+1e-9 && accFullB >= accFullA-1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(func() bool { return f() }, cfg); err != nil {
		t.Error(err)
	}
}

func TestSelectBudget(t *testing.T) {
	pareto, err := Optimize(stats3(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Generous budget: must reach the frontier's maximal accuracy.
	rich, err := SelectBudget(pareto, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bestAcc := 0.0
	for _, s := range pareto {
		if s.Accuracy > bestAcc {
			bestAcc = s.Accuracy
		}
	}
	if math.Abs(rich.Accuracy-bestAcc) > 1e-12 {
		t.Errorf("rich budget accuracy %v, frontier max %v", rich.Accuracy, bestAcc)
	}
	// Tight budget: stays within it, buys less accuracy.
	tight, err := SelectBudget(pareto, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Cost > 0.002 {
		t.Errorf("tight budget exceeded: %v", tight.Cost)
	}
	if tight.Accuracy >= rich.Accuracy {
		t.Errorf("tight budget cannot match rich accuracy: %v vs %v", tight.Accuracy, rich.Accuracy)
	}
	// Budget below everything: falls back to the cheapest schedule.
	floor, err := SelectBudget(pareto, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pareto {
		if s.Cost < floor.Cost {
			t.Errorf("fallback not cheapest: %v vs %v", floor.Cost, s.Cost)
		}
	}
	// Monotonicity: more budget never buys less accuracy.
	prev := -1.0
	for _, b := range []float64{0.0005, 0.001, 0.005, 0.02, 0.1, 1} {
		s, err := PlanBudget(stats3(), 3, b)
		if err != nil {
			t.Fatal(err)
		}
		if s.Accuracy < prev-1e-12 {
			t.Errorf("budget %v decreased accuracy: %v < %v", b, s.Accuracy, prev)
		}
		prev = s.Accuracy
	}
	if _, err := SelectBudget(nil, 1); !errors.Is(err, ErrNoMethods) {
		t.Errorf("err = %v", err)
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(nil, 3); !errors.Is(err, ErrNoMethods) {
		t.Errorf("err = %v", err)
	}
	if _, err := Select(nil, 0.5); !errors.Is(err, ErrNoMethods) {
		t.Errorf("err = %v", err)
	}
	many := make([]MethodStats, 17)
	if _, err := Optimize(many, 1); err == nil {
		t.Error("expected error for too many methods")
	}
}

func TestScheduleString(t *testing.T) {
	s := Schedule{Steps: []Step{{Method: "a", Tries: 2}, {Method: "b", Tries: 0}, {Method: "c", Tries: 1}}, Cost: 0.5, Accuracy: 0.9}
	out := s.String()
	if !strings.Contains(out, "a x2") || !strings.Contains(out, "c x1") || strings.Contains(out, "b x0") {
		t.Errorf("String = %q", out)
	}
	empty := Schedule{}
	if empty.String() != "(empty)" {
		t.Errorf("empty = %q", empty.String())
	}
	if s.TotalTries() != 3 || s.DistinctMethods() != 2 {
		t.Error("tries/distinct counting")
	}
}
