// Package report renders verification results as a self-contained HTML
// page, the artifact of the SIGMOD demonstration: documents with their
// claims marked up like a spell-checker for numbers — green for verified
// correct, red for flagged, grey for unverifiable — each with the SQL query
// used for verification, the method that produced it, and the run's cost
// summary.
package report

import (
	"bytes"
	"fmt"
	"html/template"
	"strings"
	"time"

	"repro/internal/claim"
)

// Summary carries the run-level figures shown in the report header.
type Summary struct {
	Title    string
	Schedule string
	Dollars  float64
	Calls    int
	// GeneratedAt stamps the report; the caller provides it so rendering
	// stays deterministic in tests.
	GeneratedAt time.Time
}

type claimView struct {
	ID       string
	Sentence string
	Value    string
	Verdict  string // "correct", "incorrect", "unverified"
	Label    string
	Query    string
	Method   string
	Attempts int
	Trace    string
}

type docView struct {
	ID      string
	Title   string
	Domain  string
	Claims  []claimView
	Flagged int
	// Article is the document body with claim sentences highlighted
	// in their verdict color, the spell-checker view of the demo.
	Article []template.HTML
}

type pageView struct {
	Summary Summary
	Claims  int
	Flagged int
	Docs    []docView
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Summary.Title}}</title>
<style>
body { font-family: Georgia, serif; max-width: 60rem; margin: 2rem auto; color: #1a1a1a; }
h1 { font-size: 1.6rem; } h2 { font-size: 1.2rem; margin-top: 2rem; }
.meta { color: #555; font-size: 0.9rem; }
.claim { margin: 0.8rem 0; padding: 0.6rem 0.9rem; border-left: 4px solid #ccc; background: #fafafa; }
.claim.correct { border-color: #2e7d32; }
.claim.incorrect { border-color: #c62828; background: #fff5f5; }
.claim.unverified { border-color: #9e9e9e; }
.verdict { font-weight: bold; font-size: 0.8rem; letter-spacing: 0.05em; text-transform: uppercase; }
.claim.correct .verdict { color: #2e7d32; }
.claim.incorrect .verdict { color: #c62828; }
.claim.unverified .verdict { color: #757575; }
.query { font-family: ui-monospace, monospace; font-size: 0.85rem; color: #333; background: #f0f0f0; padding: 0.3rem 0.5rem; display: block; margin-top: 0.4rem; overflow-x: auto; }
.method { color: #555; font-size: 0.8rem; }
.article p { line-height: 1.55; }
mark.correct { background: #e3f2e4; }
mark.incorrect { background: #ffd6d6; text-decoration: underline wavy #c62828; }
mark.unverified { background: #ececec; }
</style>
</head>
<body>
<h1>{{.Summary.Title}}</h1>
<p class="meta">
{{.Claims}} claims, {{.Flagged}} flagged incorrect ·
schedule: {{.Summary.Schedule}} ·
simulated fee ${{printf "%.4f" .Summary.Dollars}} over {{.Summary.Calls}} model calls ·
generated {{.Summary.GeneratedAt.Format "2006-01-02 15:04"}}
</p>
{{range .Docs}}
<h2>{{.ID}}{{if .Title}} — {{.Title}}{{end}}</h2>
<p class="meta">{{.Domain}}{{if .Flagged}} · {{.Flagged}} claim(s) need attention{{end}}</p>
<div class="article">{{range .Article}}<p>{{.}}</p>{{end}}</div>
{{range .Claims}}
<div class="claim {{.Verdict}}">
<span class="verdict">{{.Label}}</span> — {{.Sentence}}
{{if .Query}}<code class="query">{{.Query}}</code>{{end}}
{{if .Method}}<span class="method">via {{.Method}} ({{.Attempts}} attempt(s))</span>{{end}}
{{if .Trace}}<details><summary class="method">verification trace</summary><pre class="query">{{.Trace}}</pre></details>{{end}}
</div>
{{end}}
{{end}}
</body>
</html>
`))

// articleHTML renders the document body with each claim sentence wrapped in
// a verdict-colored highlight. Text is HTML-escaped first; the escaped
// claim sentences are then wrapped, so untrusted document text can never
// inject markup.
func articleHTML(d *claim.Document) []template.HTML {
	verdictOf := func(c *claim.Claim) string {
		switch {
		case !c.Result.Correct:
			return "incorrect"
		case c.Result.Verified:
			return "correct"
		default:
			return "unverified"
		}
	}
	seen := make(map[string]bool)
	var out []template.HTML
	for _, c := range d.Claims {
		para := c.Context
		if para == "" {
			para = c.Sentence
		}
		if seen[para] {
			continue
		}
		seen[para] = true
		escaped := template.HTMLEscapeString(para)
		// Highlight every claim whose sentence occurs in this paragraph.
		for _, cc := range d.Claims {
			escSentence := template.HTMLEscapeString(cc.Sentence)
			if escSentence == "" || !strings.Contains(escaped, escSentence) {
				continue
			}
			marked := `<mark class="` + verdictOf(cc) + `" title="` +
				template.HTMLEscapeString(cc.ID) + `">` + escSentence + `</mark>`
			escaped = strings.Replace(escaped, escSentence, marked, 1)
		}
		out = append(out, template.HTML(escaped)) //nolint:gosec // escaped above
	}
	return out
}

// Render produces the HTML report for annotated documents.
func Render(docs []*claim.Document, s Summary) ([]byte, error) {
	if s.Title == "" {
		s.Title = "CEDAR verification report"
	}
	view := pageView{Summary: s}
	for _, d := range docs {
		dv := docView{ID: d.ID, Title: d.Title, Domain: d.Domain}
		for _, c := range d.Claims {
			cv := claimView{
				ID:       c.ID,
				Sentence: c.Sentence,
				Value:    c.Value,
				Query:    c.Result.Query,
				Method:   c.Result.Method,
				Attempts: c.Result.Attempts,
				Trace:    c.Result.Trace,
			}
			switch {
			case !c.Result.Correct:
				cv.Verdict = "incorrect"
				cv.Label = "incorrect"
				dv.Flagged++
				view.Flagged++
			case c.Result.Verified:
				cv.Verdict = "correct"
				cv.Label = "verified correct"
			default:
				cv.Verdict = "unverified"
				cv.Label = "unverifiable (assumed correct)"
			}
			dv.Claims = append(dv.Claims, cv)
			view.Claims++
		}
		dv.Article = articleHTML(d)
		view.Docs = append(view.Docs, dv)
	}
	var buf bytes.Buffer
	if err := page.Execute(&buf, view); err != nil {
		return nil, fmt.Errorf("report: render: %w", err)
	}
	return buf.Bytes(), nil
}
