package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/claim"
)

func fixtureDocs() []*claim.Document {
	return []*claim.Document{{
		ID:     "doc-1",
		Title:  "Airline safety",
		Domain: "538",
		Claims: []*claim.Claim{
			{
				ID:       "c1",
				Sentence: "Malaysia Airlines recorded 2 fatal accidents.",
				Value:    "2",
				Result: claim.Result{
					Verified: true, Correct: true,
					Query:  `SELECT "fatal_accidents_00_14" FROM "airlines" WHERE "airline" = 'Malaysia Airlines'`,
					Method: "oneshot-gpt3.5", Attempts: 1,
				},
			},
			{
				ID:       "c2",
				Sentence: "The highest fatalities recorded was 999.",
				Value:    "999",
				Result: claim.Result{
					Verified: true, Correct: false,
					Query:  `SELECT MAX("fatalities_00_14") FROM "airlines"`,
					Method: "oneshot-gpt3.5", Attempts: 1,
				},
			},
			{
				ID:       "c3",
				Sentence: "Something unverifiable happened 7 times.",
				Value:    "7",
				Result:   claim.Result{Verified: false, Correct: true, Method: "unverified"},
			},
		},
	}}
}

func TestRender(t *testing.T) {
	out, err := Render(fixtureDocs(), Summary{
		Schedule:    "oneshot-gpt3.5 x2",
		Dollars:     0.0123,
		Calls:       7,
		GeneratedAt: time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	html := string(out)
	for _, want := range []string{
		"CEDAR verification report",
		"3 claims, 1 flagged incorrect",
		"oneshot-gpt3.5 x2",
		"$0.0123",
		"doc-1 — Airline safety",
		"verified correct",
		`class="claim incorrect"`,
		"unverifiable (assumed correct)",
		"SELECT MAX(&#34;fatalities_00_14&#34;)",
		"2026-07-04",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Claim text must be HTML-escaped.
	docs := fixtureDocs()
	docs[0].Claims[0].Sentence = `<script>alert("xss")</script> recorded 2 things.`
	out, err = Render(docs, Summary{GeneratedAt: time.Unix(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "<script>alert") {
		t.Error("claim text not escaped")
	}
}

func TestRenderEmpty(t *testing.T) {
	out, err := Render(nil, Summary{GeneratedAt: time.Unix(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "0 claims, 0 flagged") {
		t.Errorf("empty report: %s", out)
	}
}

func TestArticleHighlighting(t *testing.T) {
	docs := fixtureDocs()
	for _, c := range docs[0].Claims {
		c.Context = "Lead-in text. " + c.Sentence + " Trailing text."
	}
	out, err := Render(docs, Summary{GeneratedAt: time.Unix(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	html := string(out)
	if !strings.Contains(html, `<mark class="correct"`) {
		t.Error("correct claim not highlighted in article")
	}
	if !strings.Contains(html, `<mark class="incorrect"`) {
		t.Error("incorrect claim not highlighted in article")
	}
	if !strings.Contains(html, "Lead-in text.") {
		t.Error("article paragraphs missing")
	}
	// A marked sentence must not double-escape or lose its text.
	if !strings.Contains(html, "Malaysia Airlines recorded 2 fatal accidents.</mark>") {
		t.Errorf("highlighted sentence malformed")
	}
}
