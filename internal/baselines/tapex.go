package baselines

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/claim"
	"repro/internal/sqldb"
)

// TAPEX simulates the table-pre-training neural executor baseline: the
// model consumes a flattened rendering of the entire table together with
// the claim and directly emits entailed/refuted. Flattening bounds the
// usable table size — on small Wikipedia tables (TabFact) the approach is
// strong, but large tables overflow the encoder and the model degenerates
// to predicting "entailed", which is exactly the 0/0/0 AggChecker row of
// Table 2. It produces no SQL query.
type TAPEX struct {
	// CellCapacity is the flattening budget in table cells; above it the
	// model's discriminative power fades steeply to zero (truncation drops
	// most of the table). 100 cells corresponds to the ~512-token encoder
	// limit of the real model.
	CellCapacity int
	// Seed drives the simulated prediction noise.
	Seed int64
}

// NewTAPEX returns the baseline with the standard capacity.
func NewTAPEX(seed int64) *TAPEX {
	return &TAPEX{CellCapacity: 100, Seed: seed}
}

// Name implements Baseline.
func (t *TAPEX) Name() string { return "TAPEX" }

// VerifyDocument implements Baseline.
func (t *TAPEX) VerifyDocument(d *claim.Document) {
	cells := 0
	for _, tab := range d.Data.Tables() {
		cells += len(tab.Rows) * len(tab.Columns)
	}
	power := t.power(cells)
	for _, c := range d.Claims {
		t.verifyClaim(c, d.Data, power)
	}
}

// power returns the discriminative power in [0,1] for a table size.
func (t *TAPEX) power(cells int) float64 {
	cap := t.CellCapacity
	if cap <= 0 {
		cap = 100
	}
	if cells <= cap {
		return 1
	}
	p := 1 - 1.5*float64(cells-cap)/float64(cap)
	if p < 0 {
		return 0
	}
	return p
}

func (t *TAPEX) verifyClaim(c *claim.Claim, db *sqldb.Database, power float64) {
	c.Result.Attempts++
	c.Result.Method = "tapex"
	rng := t.claimRNG(c)

	// Detection rates of the real model: strong on numeric claims over
	// small tables, weak on textual claims (long entity strings survive
	// flattening poorly).
	detect := 0.78 * power
	falseAlarm := 0.04 * power
	if !c.IsNumeric() {
		detect = 0.2 * power
		falseAlarm = 0.0
	}
	goldIncorrect := !t.claimHolds(c, db)
	flag := false
	if goldIncorrect {
		flag = rng.Float64() < detect
	} else {
		flag = rng.Float64() < falseAlarm
	}
	// TAPEX always produces a verdict (entailed by default); it just stops
	// flagging anything when the table overflows.
	c.Result.Verified = true
	c.Result.Correct = !flag
}

// claimHolds recomputes whether the claim agrees with the data. The
// simulated neural executor must base its (noisy) prediction on the true
// state of the table, which for generated corpora is the gold label; using
// the gold query keeps the simulation honest for hand-written documents
// too.
func (t *TAPEX) claimHolds(c *claim.Claim, db *sqldb.Database) bool {
	if c.Gold.Query == "" {
		return c.Gold.Correct
	}
	res, err := sqldb.QueryScalar(db, c.Gold.Query)
	if err != nil {
		return c.Gold.Correct
	}
	if c.IsNumeric() {
		f, ok := res.AsFloat()
		if !ok {
			return c.Gold.Correct
		}
		return roundMatches(c.Value, f)
	}
	return res.Text() == c.Value
}

func (t *TAPEX) claimRNG(c *claim.Claim) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.ID))
	_, _ = h.Write([]byte(c.Sentence))
	return rand.New(rand.NewSource(t.Seed ^ int64(h.Sum64())))
}
