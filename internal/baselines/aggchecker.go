package baselines

import (
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/embed"
	"repro/internal/nl"
	"repro/internal/sqldb"
	"repro/internal/textutil"
	"repro/internal/verify"
)

// AggChecker reimplements the 2019 AggChecker approach: no language model,
// just keyword matching between claim text and schema elements to enumerate
// candidate aggregate queries, ranked by lexical similarity and by how close
// each candidate's result lands to the claimed value (the probabilistic
// ranking that system used). It only handles numeric claims over its fixed
// query search space — the reason its Table 2 row trails CEDAR and shows no
// WikiText numbers.
type AggChecker struct{}

// Name implements Baseline.
func (AggChecker) Name() string { return "AggChecker" }

// VerifyDocument implements Baseline.
func (a AggChecker) VerifyDocument(d *claim.Document) {
	lex := nl.DefaultLexicon()
	schema := nl.SchemaFromDatabase(d.Data)
	for _, c := range d.Claims {
		a.verifyClaim(c, d.Data, schema, lex)
	}
}

func (a AggChecker) verifyClaim(c *claim.Claim, db *sqldb.Database, schema *nl.Schema, lex *nl.Lexicon) {
	c.Result.Attempts++
	if !c.IsNumeric() {
		// Textual claims are out of scope for AggChecker.
		c.Result.Verified = false
		c.Result.Correct = true
		c.Result.Method = "aggchecker-unsupported"
		return
	}
	masked, _ := c.Masked()
	cv, _ := textutil.ParseNumber(c.Value)

	best := ""
	bestScore := -1.0
	for _, cand := range a.candidates(masked, db, schema, lex) {
		res, err := sqldb.QueryScalar(db, cand.query)
		if err != nil {
			continue
		}
		rv, ok := res.AsFloat()
		if !ok {
			continue
		}
		// Probabilistic ranking: lexical match weight plus a closeness
		// prior exploiting the claimed value as evidence.
		score := cand.score
		if textutil.RoundMatches(c.Value, rv) {
			score += 0.5
		} else if textutil.SameOrderOfMagnitude(cv, rv) {
			score += 0.2
		}
		if score > bestScore {
			bestScore = score
			best = cand.query
		}
	}
	if best == "" || bestScore < 0.45 {
		c.Result.Verified = false
		c.Result.Correct = true
		c.Result.Method = "aggchecker-nomatch"
		return
	}
	c.Result.Query = best
	correct, err := verify.CorrectClaim(best, c.Value, db)
	if err != nil {
		c.Result.Verified = false
		c.Result.Correct = true
		return
	}
	c.Result.Verified = true
	c.Result.Correct = correct
	c.Result.Method = "aggchecker"
}

type candidate struct {
	query string
	score float64
}

// candidates enumerates AggChecker's query search space: per numeric
// column, aggregates suggested by cue words, plus entity lookups when a
// data value occurs verbatim in the claim text.
func (a AggChecker) candidates(masked string, db *sqldb.Database, schema *nl.Schema, lex *nl.Lexicon) []candidate {
	lower := strings.ToLower(masked)
	agg := "" // lookup by default
	switch {
	case strings.Contains(lower, "total of"):
		agg = "SUM"
	case strings.Contains(lower, "average") || strings.Contains(lower, "on average"):
		agg = "AVG"
	case strings.Contains(lower, "highest"):
		agg = "MAX"
	case strings.Contains(lower, "lowest"):
		agg = "MIN"
	case strings.Contains(lower, "exactly") || strings.Contains(lower, "covers"):
		agg = "COUNT"
	case strings.Contains(lower, "percent"):
		return nil // outside the search space
	}
	var out []candidate
	for _, t := range schema.Tables {
		tab := db.Table(t.Name)
		if tab == nil {
			continue
		}
		entity := nl.EntityColumnOf(&t)
		entityVal := a.matchEntity(masked, tab, entity)
		for _, col := range t.Columns {
			if strings.EqualFold(col.Type, "TEXT") {
				continue
			}
			score := embed.Similarity(masked, lex.ColumnPhrase(col.Name))
			switch {
			case agg == "COUNT":
				out = append(out, candidate{
					query: fmt.Sprintf(`SELECT COUNT(*) FROM "%s" WHERE "%s" = (SELECT MIN("%s") FROM "%s")`, t.Name, col.Name, col.Name, t.Name),
					score: score * 0.6,
				})
				out = append(out, candidate{
					query: fmt.Sprintf(`SELECT COUNT(*) FROM "%s"`, t.Name),
					score: 0.5,
				})
			case agg != "":
				out = append(out, candidate{
					query: fmt.Sprintf(`SELECT %s("%s") FROM "%s"`, agg, col.Name, t.Name),
					score: score,
				})
			case entity != "" && entityVal != "":
				out = append(out, candidate{
					query: fmt.Sprintf(`SELECT "%s" FROM "%s" WHERE "%s" = '%s'`,
						col.Name, t.Name, entity, strings.ReplaceAll(entityVal, "'", "''")),
					score: score,
				})
			}
		}
	}
	return out
}

// matchEntity finds a data value of the entity column occurring verbatim in
// the claim text — AggChecker's literal keyword matching, which cannot see
// through aliases.
func (a AggChecker) matchEntity(masked string, tab *sqldb.Table, entity string) string {
	if entity == "" {
		return ""
	}
	vals, err := tab.UniqueValues(entity)
	if err != nil {
		return ""
	}
	lower := strings.ToLower(masked)
	for _, v := range vals {
		if strings.Contains(lower, strings.ToLower(v.Text())) {
			return v.Text()
		}
	}
	return ""
}
