package baselines

import (
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
)

func evalBaseline(t *testing.T, b Baseline, docs []*claim.Document) metrics.Quality {
	t.Helper()
	// Work on copies so multiple baselines can score the same corpus.
	var fresh []*claim.Document
	for _, d := range docs {
		nd := *d
		nd.Claims = nil
		for _, c := range d.Claims {
			cc := *c
			cc.Result = claim.Result{}
			nd.Claims = append(nd.Claims, &cc)
		}
		fresh = append(fresh, &nd)
	}
	VerifyAll(b, fresh)
	return metrics.Evaluate(fresh)
}

func TestAggCheckerBaselineMidAccuracy(t *testing.T) {
	docs, err := data.AggChecker(61)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:20]
	q := evalBaseline(t, AggChecker{}, docs)
	t.Logf("AggChecker baseline: %v", q)
	if q.F1 <= 0.1 || q.F1 >= 0.75 {
		t.Errorf("AggChecker F1 %.2f outside its mid-accuracy band", q.F1)
	}
}

func TestAggCheckerSkipsTextualClaims(t *testing.T) {
	docs, err := data.WikiText(62)
	if err != nil {
		t.Fatal(err)
	}
	q := evalBaseline(t, AggChecker{}, docs)
	if q.TP != 0 || q.FP != 0 {
		t.Errorf("AggChecker must not flag textual claims: %v", q)
	}
}

func TestTAPEXSizeCollapse(t *testing.T) {
	small, err := data.TabFact(63)
	if err != nil {
		t.Fatal(err)
	}
	large, err := data.AggChecker(63)
	if err != nil {
		t.Fatal(err)
	}
	large = large[:20]
	tap := NewTAPEX(63)
	qSmall := evalBaseline(t, tap, small)
	qLarge := evalBaseline(t, tap, large)
	t.Logf("TAPEX small tables: %v", qSmall)
	t.Logf("TAPEX large tables: %v", qLarge)
	if qSmall.F1 < 0.5 {
		t.Errorf("TAPEX should be strong on small tables, F1 %.2f", qSmall.F1)
	}
	if qLarge.F1 > 0.25 {
		t.Errorf("TAPEX must collapse on large tables, F1 %.2f", qLarge.F1)
	}
	if qLarge.Recall >= qSmall.Recall {
		t.Error("TAPEX recall must drop with table size")
	}
}

func TestTAPEXPower(t *testing.T) {
	tap := NewTAPEX(1)
	if tap.power(100) != 1 {
		t.Error("under capacity must be full power")
	}
	if tap.power(200) != 0 {
		t.Error("double capacity must be zero power")
	}
	if p := tap.power(130); p <= 0 || p >= 1 {
		t.Errorf("midway power = %v", p)
	}
}

func TestText2SQLLowPrecision(t *testing.T) {
	docs, err := data.AggChecker(64)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:20]
	model, err := sim.New(llm.ModelGPT35, 64)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewP1(model, llm.ModelGPT35)
	p2 := NewP2(model, llm.ModelGPT35)
	q1 := evalBaseline(t, p1, docs)
	q2 := evalBaseline(t, p2, docs)
	t.Logf("P1: %v", q1)
	t.Logf("P2: %v", q2)
	// Without the claimed-value plausibility gate, precision must be low
	// while recall stays decent — the Table 2 signature of P1/P2.
	for label, q := range map[string]metrics.Quality{"P1": q1, "P2": q2} {
		if q.Precision > 0.55 {
			t.Errorf("%s precision %.2f too high for a gate-less baseline", label, q.Precision)
		}
		if q.Recall < 0.4 {
			t.Errorf("%s recall %.2f too low", label, q.Recall)
		}
	}
}

func TestText2SQLNamesAndAttempts(t *testing.T) {
	model, err := sim.New(llm.ModelGPT35, 1)
	if err != nil {
		t.Fatal(err)
	}
	if NewP1(model, llm.ModelGPT35).Name() != "P1" || NewP2(model, llm.ModelGPT35).Name() != "P2" {
		t.Error("baseline names")
	}
	if (AggChecker{}).Name() != "AggChecker" || NewTAPEX(1).Name() != "TAPEX" {
		t.Error("baseline names")
	}
	docs, err := data.AggChecker(65)
	if err != nil {
		t.Fatal(err)
	}
	d := docs[0]
	NewP2(model, llm.ModelGPT35).VerifyDocument(d)
	for _, c := range d.Claims {
		if c.Result.Attempts == 0 || c.Result.Method != "P2" {
			t.Errorf("claim %s not annotated: %+v", c.ID, c.Result)
		}
	}
}
