package baselines

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/sqldb"
	"repro/internal/textutil"
	"repro/internal/verify"
)

// roundMatches re-exports the rounding comparison for baseline verdicts.
func roundMatches(claimValue string, result float64) bool {
	return textutil.RoundMatches(claimValue, result)
}

// Text2SQL implements the P1 and P2 baselines: translate the claim into a
// question and the question into SQL with a GPT-3.5-class model, then
// compare the query result to the claimed value. Unlike CEDAR these
// baselines have no plausibility gate exploiting the claimed value, no
// multi-stage escalation, and no few-shot sample harvesting — so any
// executable mistranslation directly becomes a (usually wrong) verdict,
// which is why their Table 2 precision is so low.
type Text2SQL struct {
	// Client is the translation model (GPT-3.5 in the paper).
	Client llm.Client
	// Model is the model name.
	Model string
	// Label is "P1" or "P2".
	Label string
	// IncludeSampleRows switches between the P1 template ("Create Table +
	// Select 3", which inlines example rows) and the plain P2 template.
	IncludeSampleRows bool
	// QuestionLoss is the probability that the claim-to-question
	// intermediate step loses the claim's exact semantics, yielding an
	// executable but wrong query. The two-step translation of P1/P2 is
	// far lossier than direct claim translation — the reason their
	// Table 2 precision sits near 15%.
	QuestionLoss float64
	// Seed drives the loss simulation.
	Seed int64
}

// NewP1 builds the "Create Table + Select 3" baseline.
func NewP1(client llm.Client, model string) *Text2SQL {
	return &Text2SQL{Client: client, Model: model, Label: "P1", IncludeSampleRows: true, QuestionLoss: 0.75, Seed: 1}
}

// NewP2 builds the OpenAI text-to-SQL template baseline.
func NewP2(client llm.Client, model string) *Text2SQL {
	return &Text2SQL{Client: client, Model: model, Label: "P2", QuestionLoss: 0.75, Seed: 2}
}

// Name implements Baseline.
func (b *Text2SQL) Name() string { return b.Label }

// VerifyDocument implements Baseline.
func (b *Text2SQL) VerifyDocument(d *claim.Document) {
	for _, c := range d.Claims {
		b.verifyClaim(c, d.Data)
	}
}

func (b *Text2SQL) verifyClaim(c *claim.Claim, db *sqldb.Database) {
	c.Result.Attempts++
	c.Result.Method = b.Label
	masked, ctx := c.Masked()
	schemaText := db.Schema()
	if b.IncludeSampleRows {
		schemaText += db.SampleRows(3)
	}
	prompt := prompts.OneShot(masked, c.ValueType(), schemaText, "", ctx)
	resp, err := b.Client.Complete(llm.Request{
		Model:    b.Model,
		Messages: []llm.Message{{Role: llm.RoleUser, Content: prompt}},
	})
	if err != nil {
		b.giveUp(c)
		return
	}
	query, ok := prompts.ExtractSQL(resp.Content)
	if !ok {
		b.giveUp(c)
		return
	}
	if rng := b.claimRNG(c); rng.Float64() < b.QuestionLoss {
		if mutated, ok := mutateQuery(query, db, rng); ok {
			query = mutated
		}
	}
	c.Result.Query = query
	// No plausibility gate: whatever the query returns decides the
	// verdict directly.
	correct, err := verify.CorrectClaim(query, c.Value, db)
	if err != nil {
		b.giveUp(c)
		return
	}
	c.Result.Verified = true
	c.Result.Correct = correct
}

func (b *Text2SQL) giveUp(c *claim.Claim) {
	c.Result.Verified = false
	c.Result.Correct = true
}

func (b *Text2SQL) claimRNG(c *claim.Claim) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(b.Label))
	_, _ = h.Write([]byte(c.ID))
	_, _ = h.Write([]byte(c.Sentence))
	return rand.New(rand.NewSource(b.Seed ^ int64(h.Sum64())))
}

// mutateQuery perturbs a SQL query into a semantically different but
// usually still executable one, modelling the semantic drift of the
// claim-to-question-to-SQL pipeline: a different column, a different
// aggregate, or a dropped predicate.
func mutateQuery(query string, db *sqldb.Database, rng *rand.Rand) (string, bool) {
	order := rng.Perm(3)
	for _, strategy := range order {
		if out, ok := applyMutation(query, db, rng, strategy); ok {
			return out, true
		}
	}
	return "", false
}

func applyMutation(query string, db *sqldb.Database, rng *rand.Rand, strategy int) (string, bool) {
	stmt, err := sqldb.Parse(query)
	if err != nil {
		return "", false
	}
	var table *sqldb.Table
	if stmt.From != nil {
		table = db.Table(stmt.From.Name)
	}
	switch strategy {
	case 0: // drop the WHERE predicate
		if stmt.Where == nil {
			return "", false
		}
		stmt.Where = nil
	case 1: // swap the aggregate function
		if len(stmt.Items) != 1 {
			return "", false
		}
		fe, ok := stmt.Items[0].Expr.(*sqldb.FuncExpr)
		if !ok || !fe.IsAggregate() {
			return "", false
		}
		swaps := map[string]string{"SUM": "AVG", "AVG": "MAX", "MAX": "MIN", "MIN": "SUM", "COUNT": "SUM"}
		if next, ok := swaps[fe.Name]; ok {
			if next == "SUM" && fe.Star {
				return "", false
			}
			fe.Name = next
		}
	default: // retarget the projection at another numeric column
		if table == nil || len(stmt.Items) != 1 {
			return "", false
		}
		var numeric []string
		for _, col := range table.Columns {
			if col.Type == sqldb.KindInt || col.Type == sqldb.KindFloat {
				numeric = append(numeric, col.Name)
			}
		}
		if len(numeric) < 2 {
			return "", false
		}
		replace := numeric[rng.Intn(len(numeric))]
		switch e := stmt.Items[0].Expr.(type) {
		case *sqldb.ColumnExpr:
			e.Name = replace
		case *sqldb.FuncExpr:
			if len(e.Args) == 1 {
				if ce, ok := e.Args[0].(*sqldb.ColumnExpr); ok {
					ce.Name = replace
				}
			}
		default:
			return "", false
		}
	}
	return stmt.SQL(), true
}
