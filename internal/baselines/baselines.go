// Package baselines implements the prior systems CEDAR is compared against
// in Section 7.2: AggChecker (keyword-based claim-to-SQL verification
// without LLMs), TAPEX (a table-flattening neural executor), and the two
// text-to-SQL prompt templates P1 ("Create Table + Select 3") and P2
// (OpenAI's template). The baselines reproduce the qualitative behaviours
// behind Table 2: AggChecker reaches mid accuracy on numeric claims and
// does not support textual ones; TAPEX works on small tables but collapses
// when flattening large ones; P1/P2 translate claims without exploiting the
// claimed value, so they flag far too many correct claims as incorrect.
package baselines

import "repro/internal/claim"

// Baseline verifies all claims of a document in place, like the CEDAR
// pipeline but single-strategy.
type Baseline interface {
	// Name identifies the baseline in reports.
	Name() string
	// VerifyDocument annotates each claim's Result.
	VerifyDocument(d *claim.Document)
}

// VerifyAll runs a baseline over a corpus.
func VerifyAll(b Baseline, docs []*claim.Document) {
	for _, d := range docs {
		b.VerifyDocument(d)
	}
}
