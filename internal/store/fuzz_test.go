package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzStoreDecode drives the segment scanner with arbitrary bytes and checks
// its safety contract: never panic, never claim more valid bytes than exist,
// only return records whose frames actually verify, and stay idempotent —
// rescanning the valid prefix must reproduce the same records, and re-encoding
// those records must reproduce the prefix byte for byte.
func FuzzStoreDecode(f *testing.F) {
	// Seed 1: a well-formed two-record region.
	valid := append(encodeRecord([]byte("key-a"), []byte("value-a")),
		encodeRecord([]byte("key-b"), []byte("value-b"))...)
	f.Add(valid)

	// Seed 2: flipped CRC on the second record.
	flipped := append([]byte(nil), valid...)
	flipped[len(valid)/2+4] ^= 0x01
	f.Add(flipped)

	// Seed 3: oversized length prefix claiming a multi-megabyte body.
	over := make([]byte, frameHeaderLen+8)
	binary.LittleEndian.PutUint32(over, maxRecord+1)
	f.Add(over)

	// Seed 4: mid-record EOF — a frame cut off halfway through its body.
	torn := encodeRecord([]byte("torn-key"), bytes.Repeat([]byte("x"), 64))
	f.Add(torn[:len(torn)-20])

	// Seed 5: body whose keyLen prefix overruns the body (CRC valid, shape not).
	badBody := make([]byte, 8)
	binary.LittleEndian.PutUint32(badBody, 999)
	badFrame := make([]byte, frameHeaderLen+len(badBody))
	binary.LittleEndian.PutUint32(badFrame, uint32(len(badBody)))
	binary.LittleEndian.PutUint32(badFrame[4:], crc32.Checksum(badBody, crcTable))
	copy(badFrame[frameHeaderLen:], badBody)
	f.Add(badFrame)

	// Seed 6: empty region and lone garbage.
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := scanSegment(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of [0,%d]", valid, len(data))
		}
		// Every returned record must re-verify against its own frame; the
		// strongest form is that re-encoding the records reproduces the valid
		// prefix exactly.
		var rebuilt []byte
		for _, r := range recs {
			rebuilt = append(rebuilt, encodeRecord(r.key, r.value)...)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatalf("re-encoded records do not reproduce the valid prefix:\n got %x\nwant %x", rebuilt, data[:valid])
		}
		// Idempotence: rescanning the valid prefix yields the same outcome.
		recs2, valid2 := scanSegment(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix diverged: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), valid2, valid)
		}
		for i := range recs {
			if !bytes.Equal(recs[i].key, recs2[i].key) || !bytes.Equal(recs[i].value, recs2[i].value) {
				t.Fatalf("rescan record %d differs", i)
			}
		}
	})
}
