package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// populate fills a fresh store at dir and returns the keys written.
func populate(t *testing.T, dir string, n int) []string {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("recovery-key-%04d", i)
		if err := s.Put([]byte(keys[i]), []byte(fmt.Sprintf("recovery-value-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return keys
}

// richestSegment returns the path of the segment holding the most records and
// the offset where its final record starts. Needs a segment with ≥ 2 records
// so the sweep exercises both "lose the tail record" and "keep everything
// before it".
func richestSegment(t *testing.T, dir string) (path string, finalOff, size int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := -1
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, valid := scanSegment(data[len(segmentMagic):])
		if valid != len(data)-len(segmentMagic) {
			t.Fatalf("%s has a torn tail before the test even starts", p)
		}
		if len(recs) > best {
			best = len(recs)
			path = p
			size = len(data)
			// Re-walk to find where the final record begins.
			off := len(segmentMagic)
			for i := 0; i < len(recs)-1; i++ {
				bodyLen := 4 + len(recs[i].key) + len(recs[i].value)
				off += frameHeaderLen + bodyLen
			}
			finalOff = off
		}
	}
	if best < 2 {
		t.Fatalf("no segment holds 2+ records (best %d); grow the corpus", best)
	}
	return path, finalOff, size
}

// TestRecoveryTruncationSweep is the satellite-3 sweep: truncate a segment at
// every byte offset within its final record (from the record's first byte up
// to but excluding the intact end) and reopen. Every cut must recover without
// error, serve exactly the records before the cut (never a partial one), and
// accept + persist a subsequent append.
func TestRecoveryTruncationSweep(t *testing.T) {
	src := t.TempDir()
	populate(t, src, 200)
	segPath, finalOff, size := richestSegment(t, src)
	original, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _ := scanSegment(original[len(segmentMagic):])

	// Records intact before the final one — every cut inside the final record
	// must recover to exactly this set.
	keep := len(wantRecs) - 1

	for cut := finalOff; cut < size; cut++ {
		dir := t.TempDir()
		copyDir(t, src, dir)
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), original[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		st := s.Stats()
		if st.Truncated != int64(cut-finalOff) {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, st.Truncated, cut-finalOff)
		}
		// The surviving records of the cut segment must be intact and
		// byte-exact; the torn final record must be gone entirely.
		for i, r := range wantRecs[:keep] {
			got, ok := s.Get(r.key)
			if !ok {
				t.Fatalf("cut=%d: record %d lost", cut, i)
			}
			if !bytes.Equal(got, r.value) {
				t.Fatalf("cut=%d: record %d corrupted: %q != %q", cut, i, got, r.value)
			}
		}
		if _, ok := s.Get(wantRecs[keep].key); ok {
			t.Fatalf("cut=%d: partial final record was served", cut)
		}

		// A post-recovery append must land in a readable segment.
		if err := s.Put([]byte("post-crash"), []byte("appended")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("cut=%d: reopen after append: %v", cut, err)
		}
		if got, ok := r.Get([]byte("post-crash")); !ok || string(got) != "appended" {
			t.Fatalf("cut=%d: post-recovery append unreadable: %q, %v", cut, got, ok)
		}
		if r.Stats().Truncated != 0 {
			t.Fatalf("cut=%d: second open still truncating (%d bytes)", cut, r.Stats().Truncated)
		}
		r.Close()
	}
}

// TestRecoveryBitFlipSweep flips each byte in the final record (rather than
// truncating): the CRC must catch it, and the store must never serve the
// damaged record.
func TestRecoveryBitFlipSweep(t *testing.T) {
	src := t.TempDir()
	populate(t, src, 200)
	segPath, finalOff, size := richestSegment(t, src)
	original, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _ := scanSegment(original[len(segmentMagic):])
	final := wantRecs[len(wantRecs)-1]

	for pos := finalOff; pos < size; pos++ {
		dir := t.TempDir()
		copyDir(t, src, dir)
		mutated := append([]byte(nil), original...)
		mutated[pos] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("pos=%d: Open failed: %v", pos, err)
		}
		if got, ok := s.Get(final.key); ok && !bytes.Equal(got, final.value) {
			t.Fatalf("pos=%d: served a corrupted record: %q", pos, got)
		}
		s.Close()
	}
}

// TestRecoveryRaceStress is the 32-goroutine mixed read/write stress from the
// issue: run under -race (the Makefile store gate does), with reads and
// writes landing on overlapping keys across all shards.
func TestRecoveryRaceStress(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const goroutines = 32
	const opsPer = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := []byte(fmt.Sprintf("stress-%d", (g*7+i)%97))
				if g%2 == 0 {
					val := []byte(fmt.Sprintf("val-%d-%d", g, i))
					if err := s.Put(key, val); err != nil {
						t.Error(err)
						return
					}
				} else {
					if v, ok := s.Get(key); ok && len(v) == 0 {
						t.Errorf("empty value for %s", key)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if t.Failed() {
		return
	}
	// Everything written must survive a reopen intact.
	dir := s.Dir()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Stats().Truncated != 0 {
		t.Errorf("concurrent appends left a torn tail: %d bytes", r.Stats().Truncated)
	}
	if r.Len() == 0 {
		t.Error("stress run persisted nothing")
	}
}

// copyDir clones every file in src into dst (flat directories only).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
