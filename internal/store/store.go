// Package store is CEDAR's disk-backed, content-addressed result store: the
// persistence layer that lets verification cost amortize across runs,
// benchmarks, and server restarts. CEDAR's premise is that verification cost
// is dominated by LLM fees, yet an in-memory cache alone re-bills every
// identical temperature-0 prompt the moment the process exits. The store
// persists two record families — temperature-0 completions (written by
// llm.Cached) and claim-level verdict memos (written by cedar.System) — in
// append-only, CRC-framed segment files with an in-memory index, so a warm
// process answers repeated deterministic work at zero fee and bit-identical
// content (DESIGN.md §11).
//
// Durability model: appends are framed with a per-record CRC32C, so a crash
// mid-write leaves at most a torn tail. Open recovers by scanning each
// segment and truncating at the first frame that fails a bound, checksum, or
// shape check — it never fails the open and never serves a partial record.
// Keys are full content (no hash-only addressing): a lookup compares the
// entire key material, so colliding fingerprints cannot alias entries.
//
// Concurrency model: the keyspace is sharded; each shard owns its own
// segment file, RWMutex, and index map, so concurrent readers on different
// shards never contend and readers on the same shard share an RLock.
package store

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// shardCount fixes how many segment files (and locks) a store spreads over.
// It is part of the on-disk layout only in the weak sense that a directory
// always holds exactly these files; records are self-describing, so the
// constant could change between versions without invalidating data — each
// segment replays into whatever shard map the hash assigns.
const shardCount = 16

// Store is a disk-backed key/value result store. All methods are safe for
// concurrent use.
type Store struct {
	dir    string
	shards [shardCount]*shard

	gets   atomic.Int64
	hits   atomic.Int64
	puts   atomic.Int64
	dupes  atomic.Int64
	loaded int
	thrown int64
}

// shard is one lock domain: a segment file plus its in-memory index.
type shard struct {
	mu    sync.RWMutex
	file  *os.File
	index map[string][]byte
}

// Stats reports store activity since Open plus what recovery found.
type Stats struct {
	// Gets and Hits count lookups and successful lookups.
	Gets, Hits int64
	// Puts counts appended records; Dupes counts writes skipped because the
	// identical record was already present.
	Puts, Dupes int64
	// Recovered is the number of intact records loaded at Open.
	Recovered int
	// Truncated is the number of torn-tail bytes discarded at Open across
	// all segments.
	Truncated int64
}

// Open opens (creating if needed) the store rooted at dir, recovering every
// segment: each file's intact record prefix is loaded into the index and any
// torn tail from a crashed append is truncated away. Open fails only on I/O
// errors or when dir holds files that are not CEDAR segments — corruption
// from a crash is recovered, not reported.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	for i := range s.shards {
		sh, recovered, truncated, err := openShard(filepath.Join(dir, fmt.Sprintf("seg-%02d.cedar", i)))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards[i] = sh
		s.loaded += recovered
		s.thrown += truncated
	}
	return s, nil
}

// openShard loads one segment file, truncating any torn tail.
func openShard(path string) (*shard, int, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, 0, fmt.Errorf("store: reading %s: %w", path, err)
	}
	validLen := 0
	var recs []record
	switch {
	case len(data) < len(segmentMagic):
		// Empty or a header torn mid-write: only a magic prefix is
		// recoverable (the file restarts from scratch); anything else is not
		// one of our files.
		if !bytes.HasPrefix([]byte(segmentMagic), data) {
			return nil, 0, 0, fmt.Errorf("store: %s is not a CEDAR segment", path)
		}
	case string(data[:len(segmentMagic)]) != segmentMagic:
		return nil, 0, 0, fmt.Errorf("store: %s is not a CEDAR segment", path)
	default:
		var n int
		recs, n = scanSegment(data[len(segmentMagic):])
		validLen = len(segmentMagic) + n
	}
	truncated := int64(len(data) - validLen)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: opening %s: %w", path, err)
	}
	if validLen == 0 {
		// Fresh (or reset) segment: start over with a clean header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, 0, err
		}
		if _, err := f.Write([]byte(segmentMagic)); err != nil {
			f.Close()
			return nil, 0, 0, err
		}
	} else {
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close()
			return nil, 0, 0, err
		}
		if _, err := f.Seek(int64(validLen), 0); err != nil {
			f.Close()
			return nil, 0, 0, err
		}
	}
	index := make(map[string][]byte, len(recs))
	for _, r := range recs {
		// Replay order is append order, so the last write of a key wins —
		// the same rule Put applies live.
		index[string(r.key)] = append([]byte(nil), r.value...)
	}
	return &shard{file: f, index: index}, len(recs), truncated, nil
}

// shardFor maps a key to its lock domain.
func (s *Store) shardFor(key []byte) *shard {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return s.shards[h.Sum64()%shardCount]
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.gets.Add(1)
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.index[string(key)]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	s.hits.Add(1)
	return append([]byte(nil), v...), true
}

// Put appends a record and indexes it. Writing the value already stored
// under key is a no-op (append-only files stay lean when deterministic
// producers re-derive the same result); a different value overwrites — last
// write wins, both live and on replay. A torn append (crash mid-write) is
// invisible after recovery: the next Open truncates it.
func (s *Store) Put(key, value []byte) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.index[string(key)]; ok && bytes.Equal(cur, value) {
		s.dupes.Add(1)
		return nil
	}
	if _, err := sh.file.Write(encodeRecord(key, value)); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	sh.index[string(key)] = append([]byte(nil), value...)
	s.puts.Add(1)
	return nil
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		if sh == nil {
			continue
		}
		sh.mu.RLock()
		n += len(sh.index)
		sh.mu.RUnlock()
	}
	return n
}

// Dir returns the directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gets:      s.gets.Load(),
		Hits:      s.hits.Load(),
		Puts:      s.puts.Load(),
		Dupes:     s.dupes.Load(),
		Recovered: s.loaded,
		Truncated: s.thrown,
	}
}

// Close closes every segment file. The store must not be used afterwards.
// Records are written straight through on Put, so Close adds no durability —
// it only releases file handles; skipping it (a crash) costs at most the
// torn tail the next Open truncates.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		if sh == nil {
			continue
		}
		sh.mu.Lock()
		if sh.file != nil {
			if err := sh.file.Close(); err != nil && first == nil {
				first = err
			}
			sh.file = nil
		}
		sh.mu.Unlock()
	}
	return first
}
