package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Segment file format. A segment is the on-disk journal of one shard:
//
//	magic "CEDARSG1" (8 bytes)
//	record*
//
// where each record is an independently checksummed frame:
//
//	u32  bodyLen   (little-endian, ≤ maxRecord)
//	u32  crc32c    (Castagnoli, over body)
//	body = u32 keyLen | key | value
//
// The framing is what makes recovery trivial and safe: a crash can only
// damage the suffix of an append-only file, so the first frame that fails a
// bound, checksum, or body-shape check marks the valid prefix — everything
// before it is intact by CRC, everything from it on is a torn tail to
// truncate. No record is ever served partially: a frame either passes its
// checksum whole or contributes nothing.

const (
	segmentMagic = "CEDARSG1"
	// frameHeaderLen is the per-record framing overhead (bodyLen + crc32c).
	frameHeaderLen = 8
	// minBody is the smallest legal body: a keyLen prefix with an empty key
	// and empty value.
	minBody = 4
	// maxRecord bounds one record body so a corrupt length prefix cannot make
	// the scanner attempt a multi-gigabyte read.
	maxRecord = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded key/value pair.
type record struct {
	key   []byte
	value []byte
}

// encodeRecord frames one key/value pair for appending to a segment.
func encodeRecord(key, value []byte) []byte {
	bodyLen := 4 + len(key) + len(value)
	buf := make([]byte, frameHeaderLen+bodyLen)
	body := buf[frameHeaderLen:]
	binary.LittleEndian.PutUint32(body, uint32(len(key)))
	copy(body[4:], key)
	copy(body[4+len(key):], value)
	binary.LittleEndian.PutUint32(buf, uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(body, crcTable))
	return buf
}

// decodeBody splits a checksummed record body into key and value. It returns
// ok=false when the keyLen prefix is inconsistent with the body size — a
// shape that cannot come from encodeRecord, so the scanner treats it as
// corruption even though the checksum passed.
func decodeBody(body []byte) (key, value []byte, ok bool) {
	if len(body) < minBody {
		return nil, nil, false
	}
	keyLen := binary.LittleEndian.Uint32(body)
	if uint64(keyLen) > uint64(len(body)-4) {
		return nil, nil, false
	}
	return body[4 : 4+keyLen], body[4+keyLen:], true
}

// scanSegment walks the record region of a segment (everything after the
// magic) and returns every intact record plus the byte length of the valid
// prefix. It never fails: corruption — a short frame, an out-of-bounds
// length, a checksum mismatch, a malformed body — simply ends the scan, and
// the caller truncates the file to the returned length. The returned key and
// value slices alias data.
func scanSegment(data []byte) (recs []record, valid int) {
	off := 0
	for len(data)-off >= frameHeaderLen {
		bodyLen := binary.LittleEndian.Uint32(data[off:])
		if bodyLen < minBody || bodyLen > maxRecord || uint64(bodyLen) > uint64(len(data)-off-frameHeaderLen) {
			break
		}
		want := binary.LittleEndian.Uint32(data[off+4:])
		body := data[off+frameHeaderLen : off+frameHeaderLen+int(bodyLen)]
		if crc32.Checksum(body, crcTable) != want {
			break
		}
		key, value, ok := decodeBody(body)
		if !ok {
			break
		}
		recs = append(recs, record{key: key, value: value})
		off += frameHeaderLen + int(bodyLen)
	}
	return recs, off
}
