package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.Get([]byte("missing")); ok {
		t.Error("empty store served a value")
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := []byte(fmt.Sprintf("value-%03d", i))
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		got, ok := s.Get(key)
		if !ok {
			t.Fatalf("key %s missing", key)
		}
		if want := fmt.Sprintf("value-%03d", i); string(got) != want {
			t.Fatalf("Get(%s) = %q, want %q", key, got, want)
		}
	}
	st := s.Stats()
	if st.Puts != 100 || st.Hits != 100 || st.Gets != 101 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 40 {
		t.Fatalf("reopened Len = %d, want 40", r.Len())
	}
	if r.Stats().Recovered != 40 {
		t.Errorf("recovered = %d, want 40", r.Stats().Recovered)
	}
	if r.Stats().Truncated != 0 {
		t.Errorf("clean segments reported %d truncated bytes", r.Stats().Truncated)
	}
	for i := 0; i < 40; i++ {
		got, ok := r.Get([]byte(fmt.Sprintf("k%d", i)))
		if !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v after reopen", i, got, ok)
		}
	}
}

// TestStorePutSemantics pins the append discipline: identical re-puts do not
// grow the segment, a changed value wins both live and across a reopen.
func TestStorePutSemantics(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("the-key")
	if err := s.Put(key, []byte("one")); err != nil {
		t.Fatal(err)
	}
	size := segmentBytes(t, dir)
	if err := s.Put(key, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if got := segmentBytes(t, dir); got != size {
		t.Errorf("duplicate put grew segments: %d -> %d bytes", size, got)
	}
	if s.Stats().Dupes != 1 {
		t.Errorf("dupes = %d, want 1", s.Stats().Dupes)
	}
	if err := s.Put(key, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); string(got) != "two" {
		t.Errorf("live value = %q, want last write", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, _ := r.Get(key); string(got) != "two" {
		t.Errorf("replayed value = %q, want last write", got)
	}
}

// TestStoreGetReturnsCopy guards against aliasing: mutating a returned value
// must not corrupt the index.
func TestStoreGetReturnsCopy(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get([]byte("k"))
	copy(v, "XXXXX")
	if got, _ := s.Get([]byte("k")); string(got) != "value" {
		t.Errorf("index value mutated through Get result: %q", got)
	}
}

// TestStoreRejectsForeignFiles: a directory holding non-segment data under a
// segment name is an error, not silent data loss — recovery only ever
// truncates files that carry our magic (or a torn prefix of it).
func TestStoreRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00.cedar"), []byte("NOTACEDARFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a foreign file as a segment")
	}
}

// TestStoreTornMagicResets: a crash during the very first header write
// leaves a prefix of the magic; recovery restarts the segment instead of
// failing.
func TestStoreTornMagicResets(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-03.cedar"), []byte(segmentMagic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Errorf("Len = %d after torn-header recovery", s.Len())
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// segmentBytes sums the size of every segment file in dir.
func segmentBytes(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		n += info.Size()
	}
	return n
}

// TestSegmentEncodeDecode covers the frame codec directly.
func TestSegmentEncodeDecode(t *testing.T) {
	var buf bytes.Buffer
	want := []record{
		{key: []byte("a"), value: []byte("1")},
		{key: []byte(""), value: []byte("")},
		{key: []byte("binary\x00key"), value: bytes.Repeat([]byte{0xff, 0x00}, 300)},
	}
	for _, r := range want {
		buf.Write(encodeRecord(r.key, r.value))
	}
	recs, valid := scanSegment(buf.Bytes())
	if valid != buf.Len() {
		t.Fatalf("valid = %d, want %d", valid, buf.Len())
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i].key, want[i].key) || !bytes.Equal(recs[i].value, want[i].value) {
			t.Errorf("record %d = %q/%q, want %q/%q", i, recs[i].key, recs[i].value, want[i].key, want[i].value)
		}
	}
}
