package cedar_test

import (
	"fmt"
	"log"
	"strings"

	"repro/cedar"
)

// Example demonstrates end-to-end claim verification through the public
// API: build a database and a claim, profile, verify, inspect the verdict.
func Example() {
	sys, err := cedar.New(cedar.Options{Seed: 1, AccuracyTarget: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		log.Fatal(err)
	}

	db := cedar.NewDatabase("airlinesafety")
	table, err := cedar.LoadCSVTable("airlines", strings.NewReader(
		"airline,fatal_accidents_00_14\nAer Lingus,0\nMalaysia Airlines,2\n"))
	if err != nil {
		log.Fatal(err)
	}
	db.AddTable(table)
	c, err := cedar.NewClaim("c1",
		"Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.",
		"2", "")
	if err != nil {
		log.Fatal(err)
	}
	doc := &cedar.Document{ID: "article", Data: db, Claims: []*cedar.Claim{c}}
	if _, err := sys.Verify([]*cedar.Document{doc}); err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Result.Correct)
	fmt.Println(c.Result.Query)
	// Output:
	// true
	// SELECT "fatal_accidents_00_14" FROM "airlines" WHERE "airline" = 'Malaysia Airlines'
}
