package cedar

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestEndToEndPublicAPI(t *testing.T) {
	sys, err := New(Options{Seed: 5, AccuracyTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	if len(sys.Stats()) != 4 {
		t.Fatalf("stats = %d methods", len(sys.Stats()))
	}
	if sys.Schedule() == "(not planned)" {
		t.Fatal("schedule not planned after profiling")
	}
	docs, err := Benchmark(BenchAggChecker, 1002)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:10]
	rep, err := sys.Verify(docs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %v\nschedule: %s", rep, sys.Schedule())
	if rep.Claims != 70 {
		t.Errorf("claims = %d", rep.Claims)
	}
	if rep.Verified < 40 {
		t.Errorf("verified = %d, too few", rep.Verified)
	}
	if rep.Dollars <= 0 || rep.Calls <= 0 {
		t.Errorf("cost accounting empty: %+v", rep)
	}
	if rep.Quality.F1 < 0.4 {
		t.Errorf("F1 = %v", rep.Quality.F1)
	}
	if !strings.Contains(rep.String(), "cost=$") {
		t.Errorf("report string = %q", rep.String())
	}
}

func TestVerifyBeforeProfile(t *testing.T) {
	sys, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	docs, _ := Benchmark(BenchTabFact, 1)
	if _, err := sys.Verify(docs); !errors.Is(err, ErrNotProfiled) {
		t.Errorf("err = %v", err)
	}
}

func TestNewOptionsValidation(t *testing.T) {
	if _, err := New(Options{AccuracyTarget: 1.5}); err == nil {
		t.Error("expected error for invalid target")
	}
	sys, err := New(Options{}) // default target
	if err != nil {
		t.Fatal(err)
	}
	if sys.opts.AccuracyTarget != 0.99 {
		t.Errorf("default target = %v", sys.opts.AccuracyTarget)
	}
}

func TestCustomDocumentVerification(t *testing.T) {
	// Build a document by hand through the public API: the paper's running
	// example around the airlines table.
	db := NewDatabase("airlinesafety")
	tab, err := LoadCSVTable("airlines", strings.NewReader(
		"airline,fatal_accidents_00_14,fatalities_00_14\n"+
			"Aer Lingus,0,0\n"+
			"Malaysia Airlines,2,537\n"+
			"United / Continental,2,109\n"))
	if err != nil {
		t.Fatal(err)
	}
	db.AddTable(tab)

	good, err := NewClaim("c1",
		"Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.",
		"2",
		"A look at airline safety. Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := NewClaim("c2",
		"Malaysia Airlines recorded 9 fatal accidents between 2000 and 2014.",
		"9", "")
	if err != nil {
		t.Fatal(err)
	}
	doc := &Document{ID: "demo", Domain: "demo", Data: db, Claims: []*Claim{good, bad}}

	sys, err := New(Options{Seed: 11, AccuracyTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1003)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Verify([]*Document{doc}); err != nil {
		t.Fatal(err)
	}
	if !good.Result.Correct {
		t.Errorf("true claim marked incorrect: %+v", good.Result)
	}
	if bad.Result.Correct {
		t.Errorf("false claim marked correct: %+v", bad.Result)
	}
	if good.Result.Query == "" {
		t.Error("no query recorded for verified claim")
	}
}

func TestNewClaimErrors(t *testing.T) {
	if _, err := NewClaim("x", "No value here.", "42", ""); err == nil {
		t.Error("expected error for absent value")
	}
	c, err := NewClaim("x", "The count was 42.", "42", "Unrelated paragraph.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Context, c.Sentence) {
		t.Error("context must contain the sentence")
	}
}

func TestBenchmarkNames(t *testing.T) {
	for _, name := range []string{BenchAggChecker, BenchTabFact, BenchWikiText} {
		docs, err := Benchmark(name, 3)
		if err != nil || len(docs) == 0 {
			t.Errorf("Benchmark(%q): %d docs, %v", name, len(docs), err)
		}
	}
	if _, err := Benchmark("nope", 1); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestCostBudgetOption(t *testing.T) {
	sys, err := New(Options{Seed: 21, CostBudgetPerClaim: 0.0003})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1004)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	docs, err := Benchmark(BenchAggChecker, 1005)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:8]
	rep, err := sys.Verify(docs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("budget run: %v under schedule %s", rep, sys.Schedule())
	if rep.Dollars/float64(rep.Claims) > 0.0012 {
		t.Errorf("realized per-claim cost $%.5f far above budget", rep.Dollars/float64(rep.Claims))
	}
}

func TestCacheResponsesOption(t *testing.T) {
	// With caching on, verifying the same documents twice books fewer
	// dollars the second time (temperature-0 calls hit the cache).
	sys, err := New(Options{Seed: 31, AccuracyTarget: 0.99, CacheResponses: true})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1006)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	docs1, err := Benchmark(BenchAggChecker, 1007)
	if err != nil {
		t.Fatal(err)
	}
	docs1 = docs1[:6]
	rep1, err := sys.Verify(docs1)
	if err != nil {
		t.Fatal(err)
	}
	docs2, err := Benchmark(BenchAggChecker, 1007)
	if err != nil {
		t.Fatal(err)
	}
	docs2 = docs2[:6]
	rep2, err := sys.Verify(docs2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("first run $%.4f (%d calls), second $%.4f (%d calls)", rep1.Dollars, rep1.Calls, rep2.Dollars, rep2.Calls)
	// Temperature-0 calls hit the cache on the repeat run; only the
	// stochastic retries (temperature > 0, uncacheable by design) still
	// reach the models.
	if rep2.Calls >= rep1.Calls/2 {
		t.Errorf("cache did not absorb repeat calls: %d vs %d", rep2.Calls, rep1.Calls)
	}
	if rep2.Dollars >= rep1.Dollars {
		t.Errorf("cache did not reduce repeat cost: $%.4f vs $%.4f", rep2.Dollars, rep1.Dollars)
	}
	// Verdict quality stays in the same band (retry randomness may move
	// individual outcomes; the cache itself must not degrade results).
	if diff := rep2.Quality.F1 - rep1.Quality.F1; diff < -0.15 {
		t.Errorf("cached run quality collapsed: %.3f vs %.3f", rep2.Quality.F1, rep1.Quality.F1)
	}
}

func TestEvaluateExported(t *testing.T) {
	docs, err := Benchmark(BenchTabFact, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an all-correct verdict and check the exported scorer.
	incorrect := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			c.Result.Correct = true
			if !c.Gold.Correct {
				incorrect++
			}
		}
	}
	q := Evaluate(docs)
	if q.TP != 0 || q.FN != incorrect {
		t.Errorf("all-correct verdicts: %+v (want FN=%d)", q, incorrect)
	}
}

func TestWorkersOption(t *testing.T) {
	sys, err := New(Options{Seed: 41, AccuracyTarget: 0.99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1008)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	docs, err := Benchmark(BenchAggChecker, 1009)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:12]
	rep, err := sys.Verify(docs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Claims != 84 || rep.Verified == 0 {
		t.Errorf("parallel report = %+v", rep)
	}
	for _, d := range docs {
		for _, c := range d.Claims {
			if c.Result.Method == "" {
				t.Fatalf("claim %s unannotated", c.ID)
			}
		}
	}
}

// TestResilienceOptions runs the public API under injected faults with
// retries and hedging: the run must complete with every claim annotated,
// identical reports at workers 1 and 8, and live resilience counters.
func TestResilienceOptions(t *testing.T) {
	verifyAt := func(workers int) (Report, []*Document, *System) {
		sys, err := New(Options{
			Seed:           51,
			AccuracyTarget: 0.99,
			Workers:        workers,
			FaultRate:      0.2,
			Retries:        2,
			Timeout:        5 * time.Minute,
			HedgeAfter:     2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		profDocs, err := Benchmark(BenchAggChecker, 1010)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ProfileOn(profDocs[:6]); err != nil {
			t.Fatal(err)
		}
		docs, err := Benchmark(BenchAggChecker, 1011)
		if err != nil {
			t.Fatal(err)
		}
		docs = docs[:10]
		rep, err := sys.Verify(docs)
		if err != nil {
			t.Fatal(err)
		}
		return rep, docs, sys
	}

	seq, seqDocs, sys := verifyAt(1)
	if seq.Verified == 0 {
		t.Fatal("nothing verified under 20% faults with retries")
	}
	snap := sys.Resilience()
	if snap.Faults == 0 || snap.Attempts == 0 {
		t.Errorf("resilience counters dead: %v", snap)
	}
	if snap.Retries == 0 {
		t.Errorf("20%% faults with retries enabled should retry at least once: %v", snap)
	}
	for _, d := range seqDocs {
		for _, c := range d.Claims {
			if c.Result.Method == "" {
				t.Fatalf("claim %s lost under faults", c.ID)
			}
		}
	}

	par, parDocs, _ := verifyAt(8)
	if par != seq {
		t.Errorf("faulty run differs across worker counts:\n workers=8 %+v\n workers=1 %+v", par, seq)
	}
	for i, d := range parDocs {
		for j, c := range d.Claims {
			if c.Result != seqDocs[i].Claims[j].Result {
				t.Errorf("claim %s result differs across worker counts:\n got %+v\nwant %+v",
					c.ID, c.Result, seqDocs[i].Claims[j].Result)
			}
		}
	}
}

// A breaker threshold alone (no faults) must not perturb a healthy run.
func TestBreakerOptionHealthyRun(t *testing.T) {
	sys, err := New(Options{Seed: 52, AccuracyTarget: 0.9, BreakerThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1012)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	docs, err := Benchmark(BenchAggChecker, 1013)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Verify(docs[:6])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified == 0 {
		t.Error("healthy run with breaker verified nothing")
	}
	if snap := sys.Resilience(); snap.BreakerTrips != 0 || snap.BreakerSheds != 0 {
		t.Errorf("breaker acted on a healthy provider: %v", snap)
	}
}
