package cedar

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/claim"
	"repro/internal/trace"
)

// The cross-process determinism harness (DESIGN.md §11): a cold run populates
// a temp-dir store, a warm run in a completely fresh System over the same
// directory must reproduce it — bit-identical verdicts (full Result, Trace
// string included), identical Quality partitions, zero ledger fees for
// persisted completions, and a byte-identical trace after ReplayNormalize
// strips replay noise. The matrix crosses workers {1, 8} with fault rates
// {0, 0.2}. The stack runs without Retrier/Hedged: a cold retry-then-success
// stores its completion under a retry-agnostic key, so a warm first attempt
// would be answered from the store and the cold run's fault/retry spans could
// not replay — verdict determinism would survive, trace identity would not
// (the documented §11 caveat; cedar-serve's warm-restart test covers the
// retrying configuration at verdict level).

// storeRunResult captures everything one run exposes that the contract
// constrains.
type storeRunResult struct {
	report  Report
	results []claim.Result // all claims, doc-major order
	spans   []trace.Span   // canonical order, eval run only
}

// storeRun builds a fresh System over cacheDir, profiles it, verifies a clone
// of evalDocs, and closes it — one "process" of the cross-process contract.
func storeRun(t *testing.T, cacheDir string, workers int, faultRate float64, profDocs, evalDocs []*Document) storeRunResult {
	t.Helper()
	tracer := NewTracer()
	sys, err := New(Options{
		Seed:      404,
		CacheDir:  cacheDir,
		Workers:   workers,
		FaultRate: faultRate,
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := sys.ProfileOn(claim.CloneDocuments(profDocs)); err != nil {
		t.Fatal(err)
	}
	docs := claim.CloneDocuments(evalDocs)
	rep, err := sys.Verify(docs)
	if err != nil {
		t.Fatal(err)
	}
	var results []claim.Result
	for _, d := range docs {
		for _, c := range d.Claims {
			results = append(results, c.Result)
		}
	}
	return storeRunResult{report: rep, results: results, spans: tracer.Spans()}
}

// normalizedJSONL serializes ReplayNormalize(spans) for byte comparison.
func normalizedJSONL(t *testing.T, spans []trace.Span) []byte {
	t.Helper()
	tr := trace.New()
	for _, s := range trace.ReplayNormalize(spans) {
		tr.Record(s)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertSameResults compares full claim results — verdict, method, attempts,
// failure class, and the human-readable Trace, byte for byte.
func assertSameResults(t *testing.T, label string, want, got []claim.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: claim %d diverged:\n want %+v\n  got %+v", label, i, want[i], got[i])
			return
		}
	}
}

// TestCrossProcessDeterminism is the foregrounded acceptance gate of the
// persistent store: cold populates, warm reproduces — across worker counts
// and fault rates — with the exact accounting identity
// warm.Calls == cold.Calls − warm.PersistedHits (every call the warm run did
// not make is a persisted hit, and nothing else changed).
func TestCrossProcessDeterminism(t *testing.T) {
	docs, err := Benchmark(BenchAggChecker, 404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:20]

	for _, rate := range []float64{0, 0.2} {
		// Verdicts must also agree across worker counts within a rate.
		var acrossWorkers []claim.Result
		for _, workers := range []int{1, 8} {
			rate, workers := rate, workers
			t.Run(fmt.Sprintf("rate=%v/workers=%d", rate, workers), func(t *testing.T) {
				dir := t.TempDir()
				cold := storeRun(t, dir, workers, rate, profDocs, evalDocs)
				warm := storeRun(t, dir, workers, rate, profDocs, evalDocs)

				assertSameResults(t, "cold vs warm", cold.results, warm.results)
				if cold.report.Quality != warm.report.Quality {
					t.Errorf("quality partitions diverged:\n cold %v\n warm %v", cold.report.Quality, warm.report.Quality)
				}

				// Accounting: the warm run books exactly the calls the store
				// could not answer, at strictly lower cost.
				if warm.report.PersistedHits == 0 {
					t.Error("warm run had no persisted hits")
				}
				if cold.report.PersistedHits != 0 {
					t.Errorf("cold run claims %d persisted hits from an empty store", cold.report.PersistedHits)
				}
				if warm.report.Calls != cold.report.Calls-warm.report.PersistedHits {
					t.Errorf("warm calls = %d, want cold %d − persisted %d",
						warm.report.Calls, cold.report.Calls, warm.report.PersistedHits)
				}
				if warm.report.Dollars >= cold.report.Dollars {
					t.Errorf("warm run cost $%.4f, not below cold $%.4f", warm.report.Dollars, cold.report.Dollars)
				}

				// Memos: every claim's fresh verdict must match its memo.
				if cold.report.MemoHits != 0 {
					t.Errorf("cold run hit %d memos in an empty store", cold.report.MemoHits)
				}
				if warm.report.MemoHits != warm.report.Claims {
					t.Errorf("warm memo hits = %d of %d claims", warm.report.MemoHits, warm.report.Claims)
				}
				if warm.report.MemoMismatches != 0 {
					t.Errorf("warm run had %d memo mismatches", warm.report.MemoMismatches)
				}

				// Traces: byte-identical after replay normalization.
				coldTrace := normalizedJSONL(t, cold.spans)
				warmTrace := normalizedJSONL(t, warm.spans)
				if len(coldTrace) == 0 {
					t.Fatal("cold run produced an empty normalized trace")
				}
				if !bytes.Equal(coldTrace, warmTrace) {
					t.Errorf("normalized traces differ (%d vs %d bytes)", len(coldTrace), len(warmTrace))
					diffJSONL(t, coldTrace, warmTrace)
				}

				// A second warm run over the now-complete store reproduces the
				// first warm run exactly.
				warm2 := storeRun(t, dir, workers, rate, profDocs, evalDocs)
				assertSameResults(t, "warm vs warm", warm.results, warm2.results)
				if !bytes.Equal(warmTrace, normalizedJSONL(t, warm2.spans)) {
					t.Error("second warm run's normalized trace diverged")
				}

				if acrossWorkers == nil {
					acrossWorkers = cold.results
				} else {
					assertSameResults(t, "across workers", acrossWorkers, cold.results)
				}
			})
		}
	}
}

// diffJSONL reports the first differing line of two JSONL streams.
func diffJSONL(t *testing.T, want, got []byte) {
	t.Helper()
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Logf("first divergence at line %d:\n want %s\n  got %s", i+1, wl[i], gl[i])
			return
		}
	}
	t.Logf("streams share a %d-line prefix; lengths differ (%d vs %d lines)", n, len(wl), len(gl))
}

// TestStoreTransparency: enabling CacheDir must not change verdicts relative
// to a store-less run — the persistence layer is an accelerator, never a
// behavior fork.
func TestStoreTransparency(t *testing.T) {
	docs, err := Benchmark(BenchAggChecker, 404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:14]

	run := func(cacheDir string) []claim.Result {
		t.Helper()
		sys, err := New(Options{Seed: 404, CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if err := sys.ProfileOn(claim.CloneDocuments(profDocs)); err != nil {
			t.Fatal(err)
		}
		cloned := claim.CloneDocuments(evalDocs)
		if _, err := sys.Verify(cloned); err != nil {
			t.Fatal(err)
		}
		var results []claim.Result
		for _, d := range cloned {
			for _, c := range d.Claims {
				results = append(results, c.Result)
			}
		}
		return results
	}

	bare := run("")
	stored := run(t.TempDir())
	assertSameResults(t, "bare vs stored", bare, stored)
}

// TestMemoMismatchSurfaces: a corrupted memo must be detected, counted,
// overwritten — and must never change the fresh verdict.
func TestMemoMismatchSurfaces(t *testing.T) {
	docs, err := Benchmark(BenchAggChecker, 404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:10]
	dir := t.TempDir()

	cold := storeRun(t, dir, 1, 0, profDocs, evalDocs)

	// Corrupt every memo in place: flip the verdict bits of each stored memo
	// through a System handle on the same directory.
	sys, err := New(Options{Seed: 404, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(claim.CloneDocuments(profDocs)); err != nil {
		t.Fatal(err)
	}
	cfgFP := sys.configFingerprint()
	flipped := 0
	for _, d := range evalDocs {
		dbFP := dbFingerprint(d.Data)
		for i, c := range d.Claims {
			key := memoKey(dbFP, cfgFP, d.ID, i, c)
			val, ok := sys.store.Get(key)
			if !ok {
				t.Fatalf("no memo for %s/%d", d.ID, i)
			}
			memo, ok := decodeMemo(val)
			if !ok {
				t.Fatalf("memo for %s/%d undecodable", d.ID, i)
			}
			memo.Correct = !memo.Correct
			memo.Method = "tampered"
			if err := sys.store.Put(key, encodeMemo(memo)); err != nil {
				t.Fatal(err)
			}
			flipped++
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	warm := storeRun(t, dir, 1, 0, profDocs, evalDocs)
	assertSameResults(t, "verdicts despite tampered memos", cold.results, warm.results)
	if warm.report.MemoMismatches != flipped {
		t.Errorf("mismatches = %d, want %d", warm.report.MemoMismatches, flipped)
	}
	if warm.report.MemoHits != 0 {
		t.Errorf("memo hits = %d against all-tampered memos", warm.report.MemoHits)
	}

	// The mismatch pass overwrote the memos, so a third run is clean again.
	again := storeRun(t, dir, 1, 0, profDocs, evalDocs)
	if again.report.MemoMismatches != 0 || again.report.MemoHits != again.report.Claims {
		t.Errorf("after overwrite: hits=%d mismatches=%d of %d claims",
			again.report.MemoHits, again.report.MemoMismatches, again.report.Claims)
	}
}
