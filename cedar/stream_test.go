package cedar

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/claim"
	"repro/internal/trace"
)

// The stream-determinism property (DESIGN.md §14): the same corpus verified
// as one batch, streamed one document at a time in arrival order, and
// streamed in a shuffled arrival order must produce bit-identical verdicts,
// identical quality partitions, and byte-identical normalized traces — at
// workers {1, 8} × fault rates {0, 0.2}. Streaming is a delivery mode, never
// a behavioral fork.

// streamSessionRun verifies clones of evalDocs through one Stream session in
// the given arrival order, returning results re-indexed to the original
// document order plus the merged session trace.
func streamSessionRun(t *testing.T, workers int, faultRate float64, profDocs, evalDocs []*Document, order []int) storeRunResult {
	t.Helper()
	tracer := NewTracer()
	sys, err := New(Options{
		Seed:      404,
		Workers:   workers,
		FaultRate: faultRate,
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(claim.CloneDocuments(profDocs)); err != nil {
		t.Fatal(err)
	}
	docs := claim.CloneDocuments(evalDocs)

	st := sys.NewStream(2)
	collected := make(chan []StreamResult, 1)
	go func() {
		var rs []StreamResult
		for r := range st.Results() {
			rs = append(rs, r)
		}
		collected <- rs
	}()
	for _, idx := range order {
		if err := st.Submit(docs[idx]); err != nil {
			t.Error(err)
		}
	}
	st.Close()
	outcomes := <-collected
	if err := st.Submit(docs[0]); err != ErrStreamClosed {
		t.Errorf("Submit after Close = %v, want ErrStreamClosed", err)
	}

	if len(outcomes) != len(order) {
		t.Fatalf("streamed %d documents, got %d outcomes", len(order), len(outcomes))
	}
	var report Report
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
		if o.Index != i || o.Doc != docs[order[i]] {
			t.Fatalf("outcome %d delivered out of arrival order (index %d)", i, o.Index)
		}
		report.Claims += o.Report.Claims
		report.Dollars += o.Report.Dollars
		report.Calls += o.Report.Calls
		report.Verified += o.Report.Verified
		report.Flagged += o.Report.Flagged
	}
	// Quality over the full annotated corpus, like a batch run reports it.
	report.Quality = Evaluate(docs)

	var results []claim.Result
	for _, d := range docs { // original document order, not arrival order
		for _, c := range d.Claims {
			results = append(results, c.Result)
		}
	}
	return storeRunResult{report: report, results: results, spans: st.Spans()}
}

// batchSessionRun is the comparison baseline: one Verify call over the corpus.
func batchSessionRun(t *testing.T, workers int, faultRate float64, profDocs, evalDocs []*Document) storeRunResult {
	t.Helper()
	tracer := NewTracer()
	sys, err := New(Options{
		Seed:      404,
		Workers:   workers,
		FaultRate: faultRate,
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(claim.CloneDocuments(profDocs)); err != nil {
		t.Fatal(err)
	}
	docs := claim.CloneDocuments(evalDocs)
	rep, err := sys.Verify(docs)
	if err != nil {
		t.Fatal(err)
	}
	var results []claim.Result
	for _, d := range docs {
		for _, c := range d.Claims {
			results = append(results, c.Result)
		}
	}
	return storeRunResult{report: rep, results: results, spans: tracer.Spans()}
}

func TestStreamMatchesBatchDeterminism(t *testing.T) {
	docs, err := Benchmark(BenchAggChecker, 505)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:6], docs[6:12]

	identity := make([]int, len(evalDocs))
	shuffled := make([]int, len(evalDocs))
	for i := range identity {
		identity[i] = i
		shuffled[i] = len(evalDocs) - 1 - i // reverse arrival
	}
	shuffled[0], shuffled[2] = shuffled[2], shuffled[0]

	for _, workers := range []int{1, 8} {
		for _, rate := range []float64{0, 0.2} {
			workers, rate := workers, rate
			t.Run(fmt.Sprintf("workers=%d/rate=%v", workers, rate), func(t *testing.T) {
				batch := batchSessionRun(t, workers, rate, profDocs, evalDocs)
				batchTrace := normalizedJSONL(t, batch.spans)
				if len(batch.spans) == 0 || len(batchTrace) == 0 {
					t.Fatal("batch baseline produced no trace")
				}

				for name, order := range map[string][]int{"arrival": identity, "shuffled": shuffled} {
					streamed := streamSessionRun(t, workers, rate, profDocs, evalDocs, order)
					assertSameResults(t, "batch vs stream/"+name, batch.results, streamed.results)
					if batch.report.Quality != streamed.report.Quality {
						t.Errorf("stream/%s quality diverged:\n batch  %v\n stream %v",
							name, batch.report.Quality, streamed.report.Quality)
					}
					if batch.report.Claims != streamed.report.Claims || batch.report.Calls != streamed.report.Calls {
						t.Errorf("stream/%s accounting diverged: claims %d vs %d, calls %d vs %d", name,
							batch.report.Claims, streamed.report.Claims, batch.report.Calls, streamed.report.Calls)
					}
					if math.Abs(batch.report.Dollars-streamed.report.Dollars) > 1e-9 {
						t.Errorf("stream/%s fees diverged: $%v vs $%v", name, batch.report.Dollars, streamed.report.Dollars)
					}
					if got := normalizedJSONL(t, streamed.spans); !bytes.Equal(batchTrace, got) {
						t.Errorf("stream/%s normalized trace not byte-identical to batch (%d vs %d bytes)",
							name, len(batchTrace), len(got))
					}
					// The raw streamed trace must carry the arrival spans the
					// normalizer strips.
					admits := 0
					for _, sp := range streamed.spans {
						if sp.Kind == trace.KindStreamAdmit {
							admits++
						}
					}
					if admits != len(order) {
						t.Errorf("stream/%s recorded %d stream_admit spans, want %d", name, admits, len(order))
					}
				}
			})
		}
	}
}
