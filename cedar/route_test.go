package cedar

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/schedule"
	"repro/internal/trace"
)

// routeTestStats profiles one system and returns its method statistics so the
// determinism-matrix runs can share a single profiling pass.
func routeTestStats(t *testing.T) []schedule.MethodStats {
	t.Helper()
	sys, err := New(Options{Seed: 5, AccuracyTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := Benchmark(BenchAggChecker, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	return sys.Stats()
}

// routeRunSignature renders everything the routing determinism gate pins:
// every claim's full verdict, the run's fee accounting, and the normalized
// trace.
func routeRunSignature(docs []*Document, rep Report, spans []trace.Span) string {
	var b strings.Builder
	for _, d := range docs {
		for _, c := range d.Claims {
			r := c.Result
			fmt.Fprintf(&b, "%s/%s verified=%t correct=%t executable=%t attempts=%d method=%s query=%q failure=%q\n",
				d.ID, c.ID, r.Verified, r.Correct, r.Executable, r.Attempts, r.Method, r.Query, r.Failure)
		}
	}
	fmt.Fprintf(&b, "dollars=%.10f routed=%d routefee=%.10f calls=%d\n",
		rep.Dollars, rep.RoutedSubClaims, rep.RouteDollars, rep.Calls)
	for _, s := range trace.ReplayNormalize(spans) {
		fmt.Fprintf(&b, "%+v\n", s)
	}
	return b.String()
}

// TestRouteDeterminismMatrix is the `make route` gate's core claim: verdicts,
// fees, and normalized traces of cross-database compound claims are
// bit-identical across worker counts, at every fault rate.
func TestRouteDeterminismMatrix(t *testing.T) {
	corpus, err := data.RouteBench(7)
	if err != nil {
		t.Fatal(err)
	}
	stats := routeTestStats(t)
	for _, fault := range []float64{0, 0.2} {
		var baseline string
		for _, workers := range []int{1, 8} {
			tr := NewTracer()
			sys, err := New(Options{
				Seed: 5, AccuracyTarget: 0.99, Workers: workers,
				FaultRate: fault, Route: true, Tracer: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.SetStats(stats); err != nil {
				t.Fatal(err)
			}
			if err := sys.SetCatalog(corpus.Databases...); err != nil {
				t.Fatal(err)
			}
			docs := claim.CloneDocuments(corpus.Docs)
			rep, err := sys.Verify(docs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.RoutedSubClaims != corpus.SubClaims {
				t.Errorf("fault=%v workers=%d: routed %d sub-claims, corpus has %d",
					fault, workers, rep.RoutedSubClaims, corpus.SubClaims)
			}
			if rep.RouteDollars <= 0 || rep.Dollars <= rep.RouteDollars {
				t.Errorf("fault=%v workers=%d: fee accounting %+v", fault, workers, rep)
			}
			sig := routeRunSignature(docs, rep, tr.Spans())
			if baseline == "" {
				baseline = sig
				continue
			}
			if sig != baseline {
				t.Errorf("fault=%v: workers=%d run diverges from workers=1 run:\n%s",
					fault, workers, firstDiff(baseline, sig))
			}
		}
	}
}

// firstDiff renders the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}

// TestRouteSingleDBDegenerate pins the degenerate case: with routing enabled
// over a corpus of simple (non-compound) claims, every observable — report
// string, verdicts, fees, raw trace — is byte-identical to routing disabled.
func TestRouteSingleDBDegenerate(t *testing.T) {
	stats := routeTestStats(t)
	run := func(routeOn bool) (string, Report, []trace.Span, []*Document) {
		tr := NewTracer()
		sys, err := New(Options{Seed: 5, AccuracyTarget: 0.99, Route: routeOn, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetStats(stats); err != nil {
			t.Fatal(err)
		}
		docs, err := Benchmark(BenchAggChecker, 1002)
		if err != nil {
			t.Fatal(err)
		}
		docs = docs[:6]
		if routeOn {
			dbs := make([]*Database, len(docs))
			for i, d := range docs {
				dbs[i] = d.Data
			}
			if err := sys.SetCatalog(dbs...); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := sys.Verify(docs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String(), rep, tr.Spans(), docs
	}
	offStr, offRep, offSpans, offDocs := run(false)
	onStr, onRep, onSpans, onDocs := run(true)
	if offStr != onStr {
		t.Errorf("report strings differ:\noff: %s\non:  %s", offStr, onStr)
	}
	if onRep.RoutedSubClaims != 0 || onRep.RouteDollars != 0 {
		t.Errorf("simple claims booked routing work: %+v", onRep)
	}
	if offRep.Dollars != onRep.Dollars || offRep.Calls != onRep.Calls {
		t.Errorf("cost accounting differs: off %+v on %+v", offRep, onRep)
	}
	offSig := routeRunSignature(offDocs, offRep, nil)
	onSig := routeRunSignature(onDocs, onRep, nil)
	if offSig != onSig {
		t.Errorf("verdicts differ:\n%s", firstDiff(offSig, onSig))
	}
	// Raw spans, not just normalized: passthrough planning must not record a
	// single route span or perturb a sequence number.
	if len(offSpans) != len(onSpans) {
		t.Fatalf("span counts differ: %d vs %d", len(offSpans), len(onSpans))
	}
	for i := range offSpans {
		if fmt.Sprintf("%+v", offSpans[i]) != fmt.Sprintf("%+v", onSpans[i]) {
			t.Fatalf("span %d differs:\noff: %+v\non:  %+v", i, offSpans[i], onSpans[i])
		}
	}
}

// TestRoutePartitionInvariant is the recombination property test: after a
// routed run with transport faults, every claim lands in exactly one cell of
// {TP, FP, FN, TN, Failed} — no sub-claim lost or double-counted through
// decomposition and recombination.
func TestRoutePartitionInvariant(t *testing.T) {
	corpus, err := data.RouteBench(11)
	if err != nil {
		t.Fatal(err)
	}
	stats := routeTestStats(t)
	sys, err := New(Options{Seed: 5, AccuracyTarget: 0.99, Route: true, FaultRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetStats(stats); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetCatalog(corpus.Databases...); err != nil {
		t.Fatal(err)
	}
	docs := claim.CloneDocuments(corpus.Docs)
	rep, err := sys.Verify(docs)
	if err != nil {
		t.Fatal(err)
	}
	q := rep.Quality
	if got := q.TP + q.FP + q.FN + q.TN + q.Failed; got != rep.Claims {
		t.Fatalf("partition broken: TP+FP+FN+TN+Failed = %d, claims = %d (%+v)", got, rep.Claims, q)
	}
	if rep.Claims != claim.TotalClaims(corpus.Docs) {
		t.Fatalf("claim count %d, corpus has %d", rep.Claims, claim.TotalClaims(corpus.Docs))
	}
	if q.Failed == 0 {
		t.Error("fault rate 0.3 produced no failed claims; invariant untested")
	}
	// A compound claim whose sub-claim failed must itself read as failed.
	for _, d := range docs {
		for _, c := range d.Claims {
			if strings.HasPrefix(c.Result.Method, "route(") &&
				strings.Contains(c.Result.Method, claim.MethodFailed) {
				t.Errorf("claim %s: failed sub-claim not propagated: method %q", c.ID, c.Result.Method)
			}
		}
	}
}

func TestRouteNoCatalog(t *testing.T) {
	stats := routeTestStats(t)
	sys, err := New(Options{Seed: 5, Route: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetStats(stats); err != nil {
		t.Fatal(err)
	}
	docs, _ := Benchmark(BenchAggChecker, 1002)
	if _, err := sys.Verify(docs[:1]); !errors.Is(err, ErrNoCatalog) {
		t.Fatalf("err = %v, want ErrNoCatalog", err)
	}
}

func TestSetCatalogValidation(t *testing.T) {
	sys, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetCatalog(); err == nil {
		t.Error("empty SetCatalog accepted")
	}
	if err := sys.SetCatalog(NewDatabase("empty")); err == nil {
		t.Error("tableless catalog accepted")
	}
	if sys.Catalog() != nil {
		t.Error("failed registration left a catalog behind")
	}
}

func TestRoutedScheduleReporting(t *testing.T) {
	sys, err := New(Options{Seed: 5, Route: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.RoutedSchedule(); got != "(not planned)" {
		t.Errorf("unplanned routed schedule = %q", got)
	}
	if err := sys.SetStats(routeTestStats(t)); err != nil {
		t.Fatal(err)
	}
	routed, plain := sys.RoutedSchedule(), sys.Schedule()
	if routed == plain {
		t.Errorf("routed schedule %q identical to plain schedule; fee not priced in", routed)
	}
	off, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := off.SetStats(sys.Stats()); err != nil {
		t.Fatal(err)
	}
	if off.RoutedSchedule() != off.Schedule() {
		t.Error("RoutedSchedule with routing off must render the plain schedule")
	}
}
