package cedar

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"repro/internal/claim"
	"repro/internal/route"
	"repro/internal/sqldb"
)

// Verdict memos (DESIGN.md §11) persist claim-level outcomes in the result
// store under a fingerprint of everything a verdict depends on: the database
// contents, the claim's identity and text, the system configuration including
// the planned schedule, and a code version. The memo layer is a validating
// oracle, not a bypass — Verify always recomputes the verdict and then checks
// it against the memo, so a stale or colliding memo can surface as a mismatch
// but can never change a verdict.

// verdictCodeVersion tags memo keys with the verification semantics they were
// computed under. Bump it whenever a change alters what verdict the pipeline
// produces for the same (database, claim, config) — old memos then read as
// misses instead of false mismatches.
const verdictCodeVersion = 1

// memoPrefix namespaces verdict memos in the shared store (completions use
// "c\x00"; see internal/llm).
const memoPrefix = "m\x00"

// fields accumulates length-prefixed values so every fingerprint is injective
// over its field sequence; sum digests the accumulated bytes.
type fields struct{ buf []byte }

func newFields() *fields { return &fields{} }

func (f *fields) str(s string) *fields {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	f.buf = append(f.buf, n[:]...)
	f.buf = append(f.buf, s...)
	return f
}

func (f *fields) u64(v uint64) *fields {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	f.buf = append(f.buf, n[:]...)
	return f
}

func (f *fields) f64(v float64) *fields {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], math.Float64bits(v))
	f.buf = append(f.buf, n[:]...)
	return f
}

func (f *fields) sum() [32]byte { return sha256.Sum256(f.buf) }

// dbFingerprint digests a database's full identity: name, table order,
// schema (column names and inferred types), and every row value. Two
// databases with the same fingerprint present identical data to every SQL
// query the verifier can generate.
func dbFingerprint(db *sqldb.Database) [32]byte {
	f := newFields()
	f.str(db.Name)
	tables := db.Tables()
	f.u64(uint64(len(tables)))
	for _, t := range tables {
		f.str(t.Name)
		f.u64(uint64(len(t.Columns)))
		for _, c := range t.Columns {
			f.str(c.Name)
			f.u64(uint64(c.Type))
		}
		f.u64(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				f.str(v.String())
			}
		}
	}
	return f.sum()
}

// configFingerprint digests every option that can change a verdict, plus the
// planned schedule and the code version. Workers is deliberately excluded —
// the determinism contract says it must not affect verdicts — as are
// CacheDir/CacheResponses themselves (the store must be transparent) and the
// Tracer (observability only).
func (s *System) configFingerprint() [32]byte {
	o := s.opts
	f := newFields()
	f.u64(verdictCodeVersion)
	f.u64(uint64(o.Seed))
	f.f64(o.AccuracyTarget)
	f.f64(o.CostBudgetPerClaim)
	f.u64(uint64(o.MaxTries))
	f.u64(uint64(o.Retries))
	f.u64(uint64(o.Timeout))
	f.u64(uint64(o.HedgeAfter))
	f.u64(uint64(o.BreakerThreshold))
	f.f64(o.FaultRate)
	f.str(s.Schedule())
	// Routing fields participate only when routing is on, so every
	// fingerprint computed before routing existed — and every run with
	// routing off — keeps its exact pre-routing key material.
	if o.Route {
		f.str("route")
		f.u64(uint64(o.RouteTopK))
		f.f64(route.DefaultFee)
		f.f64(route.DefaultAccuracy)
		f.buf = append(f.buf, s.catalogFP...)
	}
	return f.sum()
}

// memoKey builds the store key of one claim's verdict memo. The claim's
// document ID and index participate because verdicts genuinely depend on them:
// every attempt's randomness is split off (Seed, docID, claimIndex, method,
// try), so the same sentence in a different position may legitimately verify
// differently.
func memoKey(dbFP, cfgFP [32]byte, docID string, claimIdx int, c *claim.Claim) []byte {
	f := newFields()
	f.buf = append(f.buf, memoPrefix...)
	f.buf = append(f.buf, dbFP[:]...)
	f.buf = append(f.buf, cfgFP[:]...)
	f.str(docID)
	f.u64(uint64(claimIdx))
	f.str(c.Sentence)
	f.str(c.Value)
	f.str(c.Context)
	return f.buf
}

// memoVersion tags the on-disk memo value encoding (distinct from
// verdictCodeVersion, which is about semantics and lives in the key).
const memoVersion = 1

// encodeMemo serializes the semantic subset of a Result: the verdict fields a
// downstream consumer acts on. The human-readable Trace is excluded — it is
// large, and the cross-process harness compares it via the full Result
// instead.
func encodeMemo(r claim.Result) []byte {
	f := newFields()
	f.buf = append(f.buf, memoVersion)
	flags := uint64(0)
	if r.Verified {
		flags |= 1
	}
	if r.Correct {
		flags |= 2
	}
	if r.Executable {
		flags |= 4
	}
	f.u64(flags)
	f.u64(uint64(r.Attempts))
	f.str(r.Method)
	f.str(r.Query)
	f.str(r.Failure)
	return f.buf
}

// decodeMemo reverses encodeMemo; a wrong version or malformed layout reads
// as a miss.
func decodeMemo(val []byte) (claim.Result, bool) {
	if len(val) < 1 || val[0] != memoVersion {
		return claim.Result{}, false
	}
	buf := val[1:]
	u64 := func() (uint64, bool) {
		if len(buf) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, true
	}
	str := func() (string, bool) {
		if len(buf) < 4 {
			return "", false
		}
		n := binary.LittleEndian.Uint32(buf)
		if uint64(n) > uint64(len(buf)-4) {
			return "", false
		}
		s := string(buf[4 : 4+n])
		buf = buf[4+n:]
		return s, true
	}
	flags, ok1 := u64()
	attempts, ok2 := u64()
	method, ok3 := str()
	query, ok4 := str()
	failure, ok5 := str()
	if !(ok1 && ok2 && ok3 && ok4 && ok5) || len(buf) != 0 {
		return claim.Result{}, false
	}
	return claim.Result{
		Verified:   flags&1 != 0,
		Correct:    flags&2 != 0,
		Executable: flags&4 != 0,
		Attempts:   int(attempts),
		Method:     method,
		Query:      query,
		Failure:    failure,
	}, true
}

// memoEqual compares the semantic subset encodeMemo persists.
func memoEqual(a, b claim.Result) bool {
	return a.Verified == b.Verified &&
		a.Correct == b.Correct &&
		a.Executable == b.Executable &&
		a.Attempts == b.Attempts &&
		a.Method == b.Method &&
		a.Query == b.Query &&
		a.Failure == b.Failure
}
