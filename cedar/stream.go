package cedar

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// ErrStreamClosed is returned by Submit after Close.
var ErrStreamClosed = errors.New("cedar: stream closed")

// StreamResult delivers one streamed document's outcome: the document (its
// claims annotated in place), the per-document run report, and the arrival
// ordinal it was submitted under.
type StreamResult struct {
	// Index is the 0-based arrival ordinal of the document.
	Index int
	// Doc is the submitted document, its claim Results annotated.
	Doc *Document
	// Report covers exactly this document's run (fees, calls, quality).
	Report Report
	// Err is the run error, if any (e.g. ErrNotProfiled).
	Err error
}

// Stream is an incremental verification session: documents are submitted as
// they arrive and verified one per run through the same pipeline Verify uses,
// with a bounded in-flight window providing backpressure — Submit blocks when
// the window is full instead of buffering without limit (the Evergreen-style
// cost bound of DESIGN.md §14).
//
// Determinism survives streaming by construction: each document is its own
// run, and under CEDAR's splittable seeding a claim's verdict depends only on
// (seed, doc ID, claim, method, try) — never on what else shares a run or on
// arrival order. Streaming the same corpus in any order therefore yields
// bit-identical verdicts, fees, and (normalized) traces to one batch Verify
// call; the `make stream` gate proves it.
//
// Results are delivered in arrival order on Results(). A Stream is intended
// for one producer goroutine (Submit/Close) and one consumer (Results), but
// is safe for concurrent use.
type Stream struct {
	sys *System
	in  chan *Document
	out chan StreamResult

	// sendMu serializes the submit path (Submit vs Close) and is held across
	// the blocking window send. It must stay distinct from mu: the worker
	// takes mu to record spans while draining the window, so a Submit blocked
	// on a full window must not be holding the lock the worker needs.
	sendMu sync.Mutex
	closed bool

	mu        sync.Mutex
	spans     []trace.Span
	streamSeq map[string]int
}

// NewStream opens an incremental verification session over the system. The
// window bounds documents admitted but not yet delivered (default 4): Submit
// blocks — backpressure, not buffering — once window documents are in flight.
// The system must be profiled, like Verify. Close the stream to end the
// session; Results closes after the last outcome.
func (s *System) NewStream(window int) *Stream {
	if window <= 0 {
		window = 4
	}
	st := &Stream{
		sys:       s,
		in:        make(chan *Document, window),
		out:       make(chan StreamResult),
		streamSeq: make(map[string]int),
	}
	go st.run()
	return st
}

// run is the session worker: it consumes submitted documents in arrival
// order and verifies each as one run. Runs are already serialized by the
// System's runMu, so a single worker loses no parallelism — concurrency
// lives inside the run (Options.Workers), exactly as in batch mode.
func (st *Stream) run() {
	defer close(st.out)
	index := 0
	for doc := range st.in {
		st.recordStreamSpan(doc.ID, trace.KindStreamAdmit, fmt.Sprintf("arrival=%d", index))
		var spans []trace.Span
		rep, err := st.sys.verifyRun([]*Document{doc}, &spans)
		st.mu.Lock()
		st.spans = append(st.spans, spans...)
		st.mu.Unlock()
		st.recordStreamSpan(doc.ID, trace.KindStreamResult, fmt.Sprintf("claims=%d", rep.Claims))
		st.out <- StreamResult{Index: index, Doc: doc, Report: rep, Err: err}
		index++
	}
}

// recordStreamSpan appends one arrival-order span to the session trace. The
// spans are recorded session-side, not through the System's tracer — the
// tracer is reset per run, which would wipe an admit span recorded before
// its run starts. ReplayNormalize drops them; they exist so a raw streamed
// trace shows when each document arrived relative to its verification.
func (st *Stream) recordStreamSpan(docID, kind, detail string) {
	if !st.sys.opts.Tracer.Enabled() {
		return
	}
	key := trace.Key{Doc: docID, Method: "stream"}
	st.mu.Lock()
	seqKey := docID
	sp := trace.Span{Key: key, Seq: st.streamSeq[seqKey], Kind: kind, Detail: detail}
	st.streamSeq[seqKey] = sp.Seq + 1
	st.spans = append(st.spans, sp)
	st.mu.Unlock()
}

// Submit admits one document into the session, blocking while the in-flight
// window is full. It returns ErrStreamClosed after Close.
func (st *Stream) Submit(doc *Document) error {
	// sendMu is held across the (possibly blocking) send so Close cannot
	// close the channel between the check and the send; the worker always
	// drains the window, so a blocked Submit — and anyone waiting on the
	// lock — eventually proceeds.
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if st.closed {
		return ErrStreamClosed
	}
	st.in <- doc
	return nil
}

// SubmitClaims is Submit for a bare claim batch: it wraps the claims in a
// request document exactly as System.VerifyClaims does, so a streamed
// submission reproduces the unary entry points bit for bit.
func (st *Stream) SubmitClaims(docID string, db *Database, claims []*Claim) error {
	return st.Submit(&Document{ID: docID, Domain: "request", Data: db, Claims: claims})
}

// Results returns the session's outcome channel. Outcomes arrive in
// submission order and the channel closes once Close has been called and
// every admitted document has been delivered.
func (st *Stream) Results() <-chan StreamResult { return st.out }

// Close ends the session: no further Submits are accepted, admitted
// documents finish verifying, then Results closes. Safe to call more than
// once.
func (st *Stream) Close() {
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	close(st.in)
}

// Spans returns the session's accumulated trace in canonical order: every
// per-document run's spans plus the stream_admit/stream_result arrival spans.
// Normalized with trace.ReplayNormalize it is byte-identical to the trace of
// one batch Verify over the same documents. Call it after Results has closed
// for a complete session trace; nil when the System has no tracer.
func (st *Stream) Spans() []trace.Span {
	st.mu.Lock()
	out := make([]trace.Span, len(st.spans))
	copy(out, st.spans)
	st.mu.Unlock()
	trace.SortSpans(out)
	return out
}
