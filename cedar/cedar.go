// Package cedar is the public API of the CEDAR claim-verification system:
// cost-efficient, data-driven fact-checking of natural-language claims
// against relational data (Jayasekara & Trummer, PVLDB 2025).
//
// A System bundles the verification method stack (one-shot and agent-based
// claim-to-SQL translation over a family of language models), the profiling
// machinery that estimates each method's success probability and cost, and
// the cost-based scheduler that orders methods and retries to meet a
// user-chosen accuracy target at minimal expected cost.
//
// Typical use:
//
//	sys, _ := cedar.New(cedar.Options{Seed: 1, AccuracyTarget: 0.99})
//	profileDocs, _ := cedar.Benchmark(cedar.BenchAggChecker, 7)
//	_ = sys.ProfileOn(profileDocs[:8])
//	docs, _ := cedar.Benchmark(cedar.BenchAggChecker, 8)
//	report, _ := sys.Verify(docs)
//	fmt.Println(report)
package cedar

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/resilience"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Re-exported domain types (Definitions 2.1-2.6 of the paper).
type (
	// Document is a text document whose claims refer to a database.
	Document = claim.Document
	// Claim is one verifiable statement.
	Claim = claim.Claim
	// Result is a claim's verification outcome.
	Result = claim.Result
	// Quality holds precision/recall/F1 over the incorrect-claim class.
	Quality = metrics.Quality
	// Database is the relational store claims are verified against.
	Database = sqldb.Database
	// Table is one relation of a Database.
	Table = sqldb.Table
	// Tracer is the attempt-level trace recorder (internal/trace); install
	// one via Options.Tracer to capture per-attempt spans.
	Tracer = trace.Tracer
	// TraceManifest describes the run a trace belongs to.
	TraceManifest = trace.Manifest
)

// NewTracer constructs an enabled trace recorder for Options.Tracer.
func NewTracer() *Tracer { return trace.New() }

// Model names of the built-in simulated GPT family.
const (
	ModelGPT35 = llm.ModelGPT35
	ModelGPT4o = llm.ModelGPT4o
	ModelGPT41 = llm.ModelGPT41
)

// Options configure a System.
type Options struct {
	// Seed drives all simulated-model randomness; equal seeds reproduce
	// runs exactly.
	Seed int64
	// AccuracyTarget is the accuracy constraint for schedule planning in
	// (0, 1]; higher targets verify more thoroughly at higher cost.
	// Default 0.99 (the paper's default threshold).
	AccuracyTarget float64
	// CostBudgetPerClaim, when positive, plans for maximal accuracy within
	// an expected per-claim dollar budget instead of an accuracy target —
	// the inverse knob for deployments with a hard spending limit.
	CostBudgetPerClaim float64
	// MaxTries bounds retries per method in the schedule (default 2).
	MaxTries int
	// CacheResponses enables a temperature-0 completion cache in front of
	// each model: repeated deterministic prompts are answered locally and
	// incur no fees. Off by default to keep cost accounting comparable to
	// the paper's (which pays for every invocation).
	CacheResponses bool
	// CacheDir, when non-empty, extends the cache across processes: the
	// directory holds a disk-backed result store (internal/store, DESIGN.md
	// §11) persisting temperature-0 completions and claim-level verdict
	// memos. A warm run answers persisted work at zero fee with bit-identical
	// verdicts and (normalized) traces — the cross-process determinism
	// contract. Setting CacheDir implies CacheResponses. Call System.Close
	// to release the store's file handles.
	CacheDir string
	// Workers > 1 verifies concurrently: documents fan out across workers
	// and, within each document, independent claim attempts share the same
	// bounded pool. Verification is bit-for-bit deterministic regardless of
	// Workers — every model invocation draws randomness from a seed split
	// off (Seed, document, claim, method, try), never from shared state —
	// so parallelism only changes wall-clock time.
	Workers int

	// Route enables cross-database claim routing (DESIGN.md §16): compound
	// claims — conjunctions of several atomic statements — are decomposed,
	// each sub-claim is routed to the best-matching table of the catalog
	// registered via SetCatalog, verified there as an ordinary claim, and
	// the sub-verdicts recombine under AND-semantics. Claims that do not
	// decompose are verified whole against their home database, bit-identical
	// to Route being off. Routing never alters the verification schedule:
	// sub-claims verify under the same planned schedule as any other claim,
	// which is what keeps verdicts identical whether a sub-claim is planned
	// in-process, on a serving replica, or at a sharding coordinator (the
	// priced routed schedule is reporting-only; see RoutedSchedule).
	Route bool
	// RouteTopK bounds the candidate tables the routing stage considers per
	// sub-claim; 0 means route.DefaultTopK.
	RouteTopK int

	// Retries, when positive, retries each failed retryable model call up to
	// Retries additional times with capped exponential backoff and
	// deterministic seeded jitter (see internal/llm/resilience).
	Retries int
	// Timeout, when positive, bounds one logical call's simulated wall time
	// across retries; exceeding it fails the call with a timeout error.
	Timeout time.Duration
	// HedgeAfter, when positive, races a backup completion once the primary
	// exceeds this simulated latency; the faster result wins and both are
	// billed (tail-latency insurance costs tokens).
	HedgeAfter time.Duration
	// BreakerThreshold, when positive, installs a per-model circuit breaker
	// that trips open after this many consecutive failures and sheds calls
	// so the scheduler degrades to the next-cheapest method. The breaker's
	// shared state is order-dependent: enabling it gives up across-worker-
	// count bit-determinism in exchange for load shedding (DESIGN.md §9).
	BreakerThreshold int
	// FaultRate, when positive, injects deterministic transport failures
	// into every model call at this per-attempt probability — the chaos-
	// testing knob. Faults derive from (Seed, request identity), so a faulty
	// run reproduces exactly at any worker count.
	FaultRate float64
	// Tracer, when non-nil, records one structured span per model attempt
	// plus middleware events (cache, retry, hedge, breaker, fault) and
	// per-attempt outcomes — the DESIGN.md §10 observability layer. Verify
	// resets it at the start of each run (like the fee ledger) so a trace
	// covers exactly one run. Nil (the default) disables tracing at zero
	// cost on the attempt hot path.
	Tracer *trace.Tracer
}

// System is a configured CEDAR instance.
type System struct {
	opts    Options
	methods []verify.Method
	ledger  *llm.Ledger
	res     *metrics.Resilience
	stats   []schedule.MethodStats
	pipe    *core.Pipeline
	// store is the persistent result store (nil without Options.CacheDir);
	// caches are the per-model completion caches wired to it, kept so runs
	// can report per-run persisted-hit deltas.
	store  *store.Store
	caches []*llm.Cached
	// catalog indexes the routable databases when Options.Route is on;
	// catalogFP fingerprints their contents into the memo config key.
	catalog   *route.Catalog
	catalogFP []byte

	// runMu serializes verification runs: the fee ledger and the tracer are
	// run-scoped (reset at run start, read at run end), so overlapping runs
	// would cross-bill each other. Serialization makes Verify/VerifyClaims
	// safe for concurrent callers — cedar-serve relies on this when its
	// micro-batch loop shares one System across all HTTP requests.
	runMu sync.Mutex
}

// ErrNotProfiled is returned by Verify before ProfileOn (or SetStats) has
// provided the scheduler with method statistics.
var ErrNotProfiled = errors.New("cedar: system not profiled; call ProfileOn first")

// ErrNoCatalog is returned by Verify when Options.Route is on but no catalog
// has been registered via SetCatalog.
var ErrNoCatalog = errors.New("cedar: routing enabled but no catalog registered; call SetCatalog first")

// New builds a System with the standard four-method stack of Section 7.1:
// one-shot translation with GPT-3.5 and GPT-4o, agent-based verification
// with GPT-4o and GPT-4.1 (simulated models; see internal/llm/sim).
func New(opts Options) (*System, error) {
	if opts.AccuracyTarget == 0 {
		opts.AccuracyTarget = 0.99
	}
	if opts.AccuracyTarget < 0 || opts.AccuracyTarget > 1 {
		return nil, fmt.Errorf("cedar: accuracy target %v outside (0, 1]", opts.AccuracyTarget)
	}
	ledger := llm.NewLedger()
	res := &metrics.Resilience{}
	var st *store.Store
	if opts.CacheDir != "" {
		// A persistent store without the in-memory cache layer has nothing to
		// feed it, so CacheDir implies CacheResponses.
		opts.CacheResponses = true
		var err error
		st, err = store.Open(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("cedar: opening cache dir: %w", err)
		}
	}
	var caches []*llm.Cached
	// Middleware order, inner to outer: sim → Faulty → Metered → Cached →
	// Hedged → Retrier → Breaker. Faults sit inside the meter so failed
	// attempts are billed; the retrier sits outside the cache and hedger so
	// each retry is a full fresh call; the breaker is outermost so it counts
	// logical (post-retry) failures and its sheds never reach the retrier.
	client := func(model string) (llm.Client, error) {
		m, err := sim.New(model, opts.Seed)
		if err != nil {
			return nil, err
		}
		var c llm.Client = m
		if opts.FaultRate > 0 {
			c = &resilience.Faulty{
				Client:  c,
				Plan:    resilience.Plan{Seed: llm.SplitSeed(opts.Seed, "faults", model), Rate: opts.FaultRate},
				Metrics: res,
				Tracer:  opts.Tracer,
			}
		}
		c = &llm.Metered{Client: c, Ledger: ledger, Tracer: opts.Tracer}
		if opts.CacheResponses {
			// The cache sits outside the meter so hits are free — in-memory
			// hits within a run, persisted hits across runs and processes.
			cached := llm.NewCached(c, 0)
			cached.Tracer = opts.Tracer
			cached.Persist = st
			caches = append(caches, cached)
			c = cached
		}
		if opts.HedgeAfter > 0 {
			c = &resilience.Hedged{Client: c, After: opts.HedgeAfter, Metrics: res, Tracer: opts.Tracer}
		}
		if opts.Retries > 0 || opts.Timeout > 0 {
			c = &resilience.Retrier{
				Client:      c,
				MaxAttempts: opts.Retries + 1,
				Deadline:    opts.Timeout,
				Seed:        llm.SplitSeed(opts.Seed, "retry", model),
				Metrics:     res,
				Tracer:      opts.Tracer,
			}
		}
		if opts.BreakerThreshold > 0 {
			c = &resilience.Breaker{Client: c, FailureThreshold: opts.BreakerThreshold, Metrics: res, Tracer: opts.Tracer}
		}
		return c, nil
	}
	closeStore := func() {
		if st != nil {
			st.Close()
		}
	}
	c35, err := client(ModelGPT35)
	if err != nil {
		closeStore()
		return nil, err
	}
	c4o, err := client(ModelGPT4o)
	if err != nil {
		closeStore()
		return nil, err
	}
	c41, err := client(ModelGPT41)
	if err != nil {
		closeStore()
		return nil, err
	}
	return &System{
		opts:   opts,
		ledger: ledger,
		res:    res,
		store:  st,
		caches: caches,
		methods: []verify.Method{
			verify.NewOneShot(c35, ModelGPT35, "oneshot-gpt3.5"),
			verify.NewOneShot(c4o, ModelGPT4o, "oneshot-gpt4o"),
			verify.NewAgent(c4o, ModelGPT4o, "agent-gpt4o", opts.Seed),
			verify.NewAgent(c41, ModelGPT41, "agent-gpt4.1", opts.Seed+1),
		},
	}, nil
}

// ProfileOn estimates per-method success probabilities and costs on a
// labeled sample of documents and plans the verification schedule for the
// configured accuracy target.
func (s *System) ProfileOn(docs []*Document) error {
	stats, err := profile.Run(s.methods, docs, s.ledger, profile.Options{})
	if err != nil {
		return fmt.Errorf("cedar: profiling: %w", err)
	}
	s.ledger.Reset()
	return s.SetStats(stats)
}

// SetStats installs externally obtained profiling statistics and replans
// the schedule.
func (s *System) SetStats(stats []schedule.MethodStats) error {
	p, err := core.New(core.Config{
		Methods:        s.methods,
		Stats:          stats,
		AccuracyTarget: s.opts.AccuracyTarget,
		CostBudget:     s.opts.CostBudgetPerClaim,
		MaxTries:       s.opts.MaxTries,
		Seed:           s.opts.Seed,
		Workers:        s.opts.Workers,
		Tracer:         s.opts.Tracer,
	})
	if err != nil {
		return err
	}
	s.stats = stats
	s.pipe = p
	return nil
}

// Stats returns the current profiling statistics (nil before ProfileOn).
func (s *System) Stats() []schedule.MethodStats { return s.stats }

// SetCatalog registers the databases whose tables compound claims may route
// to (Options.Route). The catalog is rebuilt from the databases' current
// contents — re-register after ingesting or dropping tables. Registration
// order is part of the routing identity: use the same order everywhere the
// same claims are planned.
func (s *System) SetCatalog(dbs ...*Database) error {
	if len(dbs) == 0 {
		return errors.New("cedar: SetCatalog needs at least one database")
	}
	cat := route.NewCatalog(dbs...)
	if cat.Len() == 0 {
		return errors.New("cedar: SetCatalog found no tables to route to")
	}
	fp := newFields()
	fp.u64(uint64(len(dbs)))
	for _, db := range dbs {
		d := dbFingerprint(db)
		fp.buf = append(fp.buf, d[:]...)
	}
	s.catalog = cat
	s.catalogFP = fp.buf
	return nil
}

// Catalog returns the registered routing catalog (nil before SetCatalog).
func (s *System) Catalog() *route.Catalog { return s.catalog }

// RoutedSchedule renders the DP-priced end-to-end schedule of a routed
// claim: the planned verification schedule with the routing stage's fee and
// wrong-routing risk applied (schedule.RouteStage). It is a reporting and
// planning surface — verification itself always runs the shared schedule,
// so that a sub-claim's verdict is identical to the verdict of the same
// sentence arriving as a plain claim.
func (s *System) RoutedSchedule() string {
	if s.pipe == nil {
		return "(not planned)"
	}
	if !s.opts.Route {
		return s.Schedule()
	}
	mt := s.opts.MaxTries
	if mt <= 0 {
		mt = 2
	}
	rs := schedule.RouteStage{Fee: route.DefaultFee, Accuracy: route.DefaultAccuracy}
	plan, err := schedule.PlanRouted(s.stats, mt, s.opts.AccuracyTarget, rs)
	if err != nil {
		return s.Schedule()
	}
	return plan.String()
}

// Resilience snapshots the operational counters of the resilience middleware
// (attempts, retries, injected faults, hedges, breaker activity) accumulated
// since the system was built.
func (s *System) Resilience() metrics.ResilienceSnapshot { return s.res.Snapshot() }

// TraceManifest assembles the run manifest for a trace of the given corpus:
// the seed, worker count, corpus size, and the system's full option set. It
// belongs with the trace summary, not the JSONL span stream — it names the
// worker count, which the byte-identical determinism contract deliberately
// excludes.
func (s *System) TraceManifest(docs []*Document) TraceManifest {
	return trace.Manifest{
		Seed:    s.opts.Seed,
		Workers: s.opts.Workers,
		Docs:    len(docs),
		Claims:  claim.TotalClaims(docs),
		Options: s.opts,
	}
}

// Schedule describes the planned verification schedule.
func (s *System) Schedule() string {
	if s.pipe == nil {
		return "(not planned)"
	}
	return s.pipe.Schedule().String()
}

// Report summarizes one verification run.
type Report struct {
	// Quality scores the verdicts against gold labels where documents
	// carry them (synthetic benchmarks); all-zero for unlabeled input.
	Quality Quality
	// Claims is the number of claims processed.
	Claims int
	// Verified counts claims that some method verified plausibly.
	Verified int
	// Flagged counts claims marked incorrect.
	Flagged int
	// Dollars is the total simulated LLM fee of the run.
	Dollars float64
	// Calls is the number of model invocations.
	Calls int
	// PersistedHits counts temperature-0 completions this run answered from
	// the persistent store (Options.CacheDir) at zero fee — completions some
	// earlier run already paid for. Zero without a cache dir.
	PersistedHits int
	// RoutedSubClaims counts routing decisions of the run (sub-claims of
	// compound claims bound to catalog tables; Options.Route); RouteDollars
	// is their total routing fee, already included in Dollars. Both are zero
	// when routing is off or nothing decomposed.
	RoutedSubClaims int
	RouteDollars    float64
	// MemoHits counts claims whose freshly computed verdict matched a
	// persisted verdict memo; MemoMismatches counts disagreements (the memo
	// is then overwritten — memos validate, they never override).
	MemoHits       int
	MemoMismatches int
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("claims=%d verified=%d flagged=%d cost=$%.4f calls=%d | %v",
		r.Claims, r.Verified, r.Flagged, r.Dollars, r.Calls, r.Quality)
}

// Verify runs multi-stage verification (Algorithm 1) over the documents,
// annotating each claim's Result in place, and returns a run report.
//
// Verify is safe for concurrent use: runs are serialized, because the fee
// ledger and the tracer cover exactly one run each. Documents within a run
// are mutually independent (per-document schedules, samples, and split
// seeds), so a claim's verdict depends only on its own document's identity
// and contents — never on which other documents share the run. That
// independence is what lets cedar-serve coalesce concurrent requests into
// micro-batches without perturbing any request's results.
func (s *System) Verify(docs []*Document) (Report, error) {
	return s.verifyRun(docs, nil)
}

// verifyRun is Verify plus an optional span capture: when spans is non-nil it
// receives the run's trace while runMu is still held, so the capture cannot
// race a subsequent run's tracer reset. Stream uses it to accumulate per-run
// traces across a streamed session.
func (s *System) verifyRun(docs []*Document, spans *[]trace.Span) (Report, error) {
	if s.pipe == nil {
		return Report{}, ErrNotProfiled
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.ledger.Reset()
	// A trace covers exactly one run: drop spans from profiling or earlier
	// runs, mirroring the ledger reset.
	s.opts.Tracer.Reset()
	// Routing expands compound claims into routed single-claim unit
	// documents before verification; documents without compound claims pass
	// through as the same pointers, so a route-enabled run over simple
	// claims is bit-identical to routing being off. Planning happens under
	// runMu and single-threaded, so bindings and route spans are
	// deterministic at any worker count.
	runDocs := docs
	var plan *route.Plan
	if s.opts.Route {
		if s.catalog == nil {
			return Report{}, ErrNoCatalog
		}
		plan = route.PlanDocuments(docs, s.catalog, route.Options{
			Seed:   s.opts.Seed,
			TopK:   s.opts.RouteTopK,
			Tracer: s.opts.Tracer,
		})
		runDocs = plan.Expanded
	}
	prePersist := s.persistHits()
	if s.opts.Workers > 1 {
		s.pipe.VerifyDocumentsParallel(runDocs, s.opts.Workers)
	} else {
		s.pipe.VerifyDocuments(runDocs)
	}
	if plan != nil {
		plan.Recombine()
	}
	rep := Report{
		Quality:       metrics.Evaluate(docs),
		Claims:        claim.TotalClaims(docs),
		Dollars:       s.ledger.TotalDollars(),
		Calls:         s.ledger.TotalCalls(),
		PersistedHits: s.persistHits() - prePersist,
	}
	if plan != nil {
		rep.RoutedSubClaims = plan.SubClaims
		rep.RouteDollars = plan.Fee
		rep.Dollars += plan.Fee
	}
	rep.MemoHits, rep.MemoMismatches = s.memoPass(runDocs)
	for _, d := range docs {
		for _, c := range d.Claims {
			if c.Result.Verified {
				rep.Verified++
			}
			if !c.Result.Correct {
				rep.Flagged++
			}
		}
	}
	if spans != nil && s.opts.Tracer.Enabled() {
		*spans = s.opts.Tracer.Spans()
	}
	s.ledger.Reset()
	return rep, nil
}

// persistHits sums persisted-store hits across the per-model caches (a
// lifetime counter; Verify reports per-run deltas).
func (s *System) persistHits() int {
	total := 0
	for _, c := range s.caches {
		_, hits := c.PersistStats()
		total += hits
	}
	return total
}

// memoPass reconciles freshly computed verdicts with the persistent memo
// layer after a run (DESIGN.md §11). For each claim it recomputes the memo
// key and either (a) validates the fresh verdict against the stored memo —
// counting a hit on agreement, recording a memo_mismatch span and
// overwriting on disagreement — or (b) stores a new memo on a miss. Memos
// never feed verdicts forward: the pipeline has already run, so a corrupt or
// stale memo can surface as a mismatch but cannot alter a Result.
func (s *System) memoPass(docs []*Document) (hits, mismatches int) {
	if s.store == nil {
		return 0, 0
	}
	cfgFP := s.configFingerprint()
	for _, d := range docs {
		dbFP := dbFingerprint(d.Data)
		for i, c := range d.Claims {
			key := memoKey(dbFP, cfgFP, d.ID, i, c)
			fresh := c.Result
			if val, ok := s.store.Get(key); ok {
				if memo, ok := decodeMemo(val); ok {
					if memoEqual(memo, fresh) {
						hits++
						continue
					}
					mismatches++
					if s.opts.Tracer.Enabled() {
						s.opts.Tracer.Record(trace.Span{
							Key:     trace.Key{Doc: d.ID, Claim: i, Method: "memo"},
							Kind:    trace.KindMemoMismatch,
							Outcome: trace.OutcomeError,
							Detail:  fmt.Sprintf("memo %s vs fresh %s", memoVerdict(memo), memoVerdict(fresh)),
						})
					}
				}
			}
			// Miss, undecodable, or mismatch: persist the fresh verdict.
			_ = s.store.Put(key, encodeMemo(fresh))
		}
	}
	return hits, mismatches
}

// memoVerdict renders a Result's verdict compactly for mismatch diagnostics.
func memoVerdict(r claim.Result) string {
	return fmt.Sprintf("{verified=%t correct=%t method=%s attempts=%d}", r.Verified, r.Correct, r.Method, r.Attempts)
}

// Close releases the persistent result store's file handles (a no-op without
// Options.CacheDir). The System must not verify after Close.
func (s *System) Close() error {
	if s.store == nil {
		return nil
	}
	st := s.store
	s.store = nil
	return st.Close()
}

// Store exposes the persistent store (nil without Options.CacheDir) so
// callers can share it — the dataset registry persists ingested catalogs
// into the same store under its own key prefix.
func (s *System) Store() *store.Store { return s.store }

// StoreStats snapshots the persistent store's activity counters (zero Stats
// without Options.CacheDir).
func (s *System) StoreStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

// VerifyClaims verifies one batch of claims against a database as a single
// request-scoped run. It wraps the claims in a document whose ID seeds
// every attempt — llm.SplitSeed(Seed, docID, claimIndex, method, try) — so
// the same (docID, claims) pair yields bit-identical verdicts and fees no
// matter which ingress path submitted it. This is the entry point shared by
// cmd/cedar (one run per invocation) and cedar-serve (one run per
// micro-batch); both paths funnel into the same pipeline, so there is no
// behavioral fork between batch and served verification to keep in sync.
//
// The returned Report's Dollars/Calls cover exactly this run. Like Verify,
// concurrent calls are serialized.
func (s *System) VerifyClaims(docID string, db *Database, claims []*Claim) (Report, error) {
	doc := &Document{ID: docID, Domain: "request", Data: db, Claims: claims}
	return s.Verify([]*Document{doc})
}

// --- document construction helpers ---

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database { return sqldb.NewDatabase(name) }

// LoadCSVTable reads a table from CSV (header row then data rows) for use
// in a document's database.
func LoadCSVTable(name string, r io.Reader) (*Table, error) {
	return sqldb.LoadCSV(name, r)
}

// NewClaim builds a claim from a sentence, the claimed value as it appears
// in the sentence, and the surrounding context paragraph. The value's token
// span is located automatically.
func NewClaim(id, sentence, value, context string) (*Claim, error) {
	c, err := claim.New(id, sentence, value, context)
	if err != nil {
		return nil, fmt.Errorf("cedar: %w", err)
	}
	return c, nil
}

// --- benchmark corpora ---

// Benchmark names accepted by Benchmark.
const (
	BenchAggChecker = "aggchecker"
	BenchTabFact    = "tabfact"
	BenchWikiText   = "wikitext"
)

// Benchmark generates one of the built-in synthetic benchmark corpora
// shaped after the paper's datasets.
func Benchmark(name string, seed int64) ([]*Document, error) {
	switch name {
	case BenchAggChecker:
		return data.AggChecker(seed)
	case BenchTabFact:
		return data.TabFact(seed)
	case BenchWikiText:
		return data.WikiText(seed)
	default:
		return nil, fmt.Errorf("cedar: unknown benchmark %q (want %s, %s, or %s)",
			name, BenchAggChecker, BenchTabFact, BenchWikiText)
	}
}

// Evaluate scores annotated documents against their gold labels.
func Evaluate(docs []*Document) Quality { return metrics.Evaluate(docs) }
