// Package repro's top-level benchmark suite regenerates every table and
// figure of the paper's evaluation (one benchmark per artifact, reporting
// the headline numbers as custom metrics), plus ablation benchmarks for the
// design choices called out in DESIGN.md and micro-benchmarks for the
// substrates.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embed"
	"repro/internal/exp"
	"repro/internal/llm"
	"repro/internal/llm/resilience"
	"repro/internal/llm/sim"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/trace"
	"repro/internal/verify"
)

const benchSeed = 17

// --- one benchmark per paper artifact ---

// BenchmarkTable2 regenerates Table 2 (CEDAR vs baselines on the three
// datasets) and reports CEDAR's AggChecker F1.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table2(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row("AggChecker", "CEDAR").Quality.F1*100, "cedar-aggchecker-F1")
		b.ReportMetric(res.Row("TabFact", "TAPEX").Quality.F1*100, "tapex-tabfact-F1")
	}
}

// BenchmarkCosts regenerates the Section 7.2 cost report.
func BenchmarkCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Costs(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Dataset == "AggChecker" {
				b.ReportMetric(row.Dollars, "aggchecker-$")
			}
		}
	}
}

// BenchmarkFig5 regenerates the Figure 5 trade-off curves and reports the
// cost ratio between the 99%-threshold CEDAR run and the all-agent run.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		cedarHi := res.Point("cedar@0.99")
		agent := res.Point(exp.MethodAgent41)
		if cedarHi != nil && agent != nil && cedarHi.Dollars > 0 {
			b.ReportMetric(agent.Dollars/cedarHi.Dollars, "agent-cost-ratio")
			b.ReportMetric(cedarHi.F1*100, "cedar@0.99-F1")
		}
	}
}

// BenchmarkFig6 regenerates the unit-conversion study.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverallAligned*100, "aligned-F1")
		b.ReportMetric(res.OverallConverted*100, "converted-F1")
	}
}

// BenchmarkTable3 regenerates the query-complexity statistics.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row("JoinBench").AvgJoins, "joinbench-avg-joins")
	}
}

// BenchmarkJoinBench regenerates the schema-normalization study.
func BenchmarkJoinBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.JoinBench(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CostFactor(), "normalization-cost-factor")
	}
}

// BenchmarkFig7 regenerates the distribution-shift study.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig7(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithinBounds(2, 0.1)*100, "cross-domain-within-bounds-%")
	}
}

// --- ablation benchmarks (design choices from DESIGN.md §5) ---

// BenchmarkAblationMasking compares false-positive "verified correct"
// verdicts on incorrect claims with and without claim-value masking
// (Algorithm 4 / Figure 2): unmasked prompts let the model echo the claimed
// value as a SQL constant.
func BenchmarkAblationMasking(b *testing.B) {
	docs, err := data.Generate(data.GenConfig{
		Seed: benchSeed, Docs: 12, ClaimsPerDoc: 5, IncorrectRate: 0.5,
		Domains: []string{data.Domain538},
	})
	if err != nil {
		b.Fatal(err)
	}
	model, err := sim.New(llm.ModelGPT4o, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	masked := verify.NewOneShot(model, llm.ModelGPT4o, "masked")
	unmasked := verify.NewOneShot(model, llm.ModelGPT4o, "unmasked")
	unmasked.Mask = false
	falsePositives := func(m verify.Method) int {
		n := 0
		for _, d := range docs {
			for _, c := range d.Claims {
				if c.Gold.Correct {
					continue
				}
				cc := *c
				cc.Result = claim.Result{}
				if verify.Attempt(m, &cc, d.Data, nil, 0) && cc.Result.Correct {
					n++
				}
			}
		}
		return n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(falsePositives(masked)), "fp-masked")
		b.ReportMetric(float64(falsePositives(unmasked)), "fp-unmasked")
	}
}

// BenchmarkAblationFewShot measures the success-rate lift from harvested
// few-shot samples (Algorithm 1 lines 16-22) at a retry temperature.
func BenchmarkAblationFewShot(b *testing.B) {
	docs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	model, err := sim.New(llm.ModelGPT35, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m := verify.NewOneShot(model, llm.ModelGPT35, "oneshot")
	sample := &verify.Sample{
		MaskedClaim: "Aeroflot recorded x incidents between 1985 and 1999.",
		Query:       `SELECT "incidents_85_99" FROM "airlines" WHERE "airline" = 'Aeroflot'`,
	}
	run := func(s *verify.Sample) float64 {
		agree, total := 0, 0
		for _, d := range docs {
			for _, c := range d.Claims {
				cc := *c
				cc.Result = claim.Result{}
				total++
				if verify.Attempt(m, &cc, d.Data, s, 0.6) && cc.Result.Correct == cc.Gold.Correct {
					agree++
				}
			}
		}
		return float64(agree) / float64(total)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(nil)*100, "gold-agree-no-sample-%")
		b.ReportMetric(run(sample)*100, "gold-agree-with-sample-%")
	}
}

// BenchmarkAblationRetryDiversity compares a schedule repeating one method
// against one mixing methods at the same modeled accuracy — the diversity
// preference of SelectSchedule (Section 6.4).
func BenchmarkAblationRetryDiversity(b *testing.B) {
	stats := []schedule.MethodStats{
		{Name: "a", Cost: 0.01, Accuracy: 0.7},
		{Name: "b", Cost: 0.01, Accuracy: 0.7},
	}
	for i := 0; i < b.N; i++ {
		pareto, err := schedule.Optimize(stats, 2)
		if err != nil {
			b.Fatal(err)
		}
		s, err := schedule.Select(pareto, 0.9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.DistinctMethods()), "distinct-methods")
	}
}

// BenchmarkAblationReconstruction exercises Algorithm 9 on a multi-hop
// agent trace: the final trivial query is recomposed into a self-contained
// one.
func BenchmarkAblationReconstruction(b *testing.B) {
	db := sqldb.NewDatabase("r")
	tab := sqldb.NewTable("t", "name", "v")
	tab.MustAppendRow(sqldb.Text("alpha"), sqldb.Int(10))
	tab.MustAppendRow(sqldb.Text("beta"), sqldb.Int(30))
	db.AddTable(tab)
	queries := []string{
		`SELECT MAX("v") FROM "t"`,
		`SELECT MIN("v") FROM "t"`,
		`SELECT 30 - 10`,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := verify.Reconstruct(append([]string{}, queries...), db)
		v, err := sqldb.QueryScalar(db, out)
		if err != nil {
			b.Fatal(err)
		}
		if n, _ := v.AsInt(); n != 20 {
			b.Fatalf("reconstructed result %v", v)
		}
	}
}

// --- substrate micro-benchmarks ---

func benchDB() *sqldb.Database {
	db := sqldb.NewDatabase("micro")
	tab := sqldb.NewTable("t", "name", "grp", "v")
	for i := 0; i < 1000; i++ {
		tab.MustAppendRow(sqldb.Text("row"+string(rune('a'+i%26))), sqldb.Int(int64(i%10)), sqldb.Float(float64(i)*1.5))
	}
	db.AddTable(tab)
	return db
}

// BenchmarkSQLParse measures the SQL parser.
func BenchmarkSQLParse(b *testing.B) {
	q := `SELECT (SELECT COUNT("name") FROM "t" WHERE "grp" = 3) * 100.0 / (SELECT COUNT("name") FROM "t")`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqldb.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLAggregate measures aggregate execution over 1000 rows.
func BenchmarkSQLAggregate(b *testing.B) {
	db := benchDB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqldb.QueryScalar(db, `SELECT SUM("v") FROM "t" WHERE "grp" < 5`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLGroupBy measures grouped aggregation.
func BenchmarkSQLGroupBy(b *testing.B) {
	db := benchDB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqldb.Query(db, `SELECT "grp", AVG("v") FROM "t" GROUP BY "grp"`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedSimilarity measures the embedding substrate.
func BenchmarkEmbedSimilarity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		embed.Similarity("fatal accidents between 2000 and 2014", "fatal accidents between 1985 and 1999")
	}
}

// BenchmarkOneShotAttempt measures one full one-shot verification attempt
// (prompt build, simulated completion, extraction, gate, validation).
func BenchmarkOneShotAttempt(b *testing.B) {
	docs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	model, err := sim.New(llm.ModelGPT4o, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m := verify.NewOneShot(model, llm.ModelGPT4o, "oneshot")
	d := docs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := *d.Claims[i%len(d.Claims)]
		c.Result = claim.Result{}
		verify.Attempt(m, &c, d.Data, nil, 0)
	}
}

// BenchmarkAgentAttempt measures one full agent verification attempt
// (multi-turn ReAct conversation plus reconstruction).
func BenchmarkAgentAttempt(b *testing.B) {
	docs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	model, err := sim.New(llm.ModelGPT4o, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	m := verify.NewAgent(model, llm.ModelGPT4o, "agent", benchSeed)
	d := docs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := *d.Claims[i%len(d.Claims)]
		c.Result = claim.Result{}
		verify.Attempt(m, &c, d.Data, nil, 0)
	}
}

// BenchmarkTraceOverhead measures what attempt-level tracing adds to the
// metered verification hot path, in both states: "disabled" (nil tracer, the
// default) must cost one pointer comparison and zero allocations; "enabled"
// pays one span append per booked completion. The nil-path allocation guard
// runs first and fails the benchmark outright if the disabled primitive ever
// allocates — e.g. if a future change builds the span before checking
// Enabled().
func BenchmarkTraceOverhead(b *testing.B) {
	if avg := testing.AllocsPerRun(1000, func() {
		var tr *trace.Tracer
		if tr.Enabled() {
			b.Fatal("nil tracer reported enabled")
		}
		tr.Record(trace.Span{})
	}); avg != 0 {
		b.Fatalf("disabled tracing allocates %v objects per attempt, want 0", avg)
	}
	docs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	d := docs[0]
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			var tracer *trace.Tracer
			if mode == "enabled" {
				tracer = trace.New()
			}
			model, err := sim.New(llm.ModelGPT4o, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			metered := &llm.Metered{Client: model, Ledger: llm.NewLedger(), Tracer: tracer}
			m := verify.NewOneShot(metered, llm.ModelGPT4o, "oneshot")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := *d.Claims[i%len(d.Claims)]
				c.Result = claim.Result{}
				verify.Attempt(m, &c, d.Data, nil, 0)
				if tracer != nil && tracer.Len() > 1<<16 {
					b.StopTimer()
					tracer.Reset() // bound memory on long -benchtime runs
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkScheduleOptimize measures the DP scheduler over the standard
// four-method space with up to three retries.
func BenchmarkScheduleOptimize(b *testing.B) {
	stats := []schedule.MethodStats{
		{Name: "o35", Cost: 0.0002, Accuracy: 0.8},
		{Name: "o4o", Cost: 0.0012, Accuracy: 0.88},
		{Name: "a4o", Cost: 0.003, Accuracy: 0.95},
		{Name: "a41", Cost: 0.0024, Accuracy: 0.96},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Plan(stats, 3, 0.99); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusGeneration measures building the AggChecker-shaped corpus.
func BenchmarkCorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := data.AggChecker(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelVerification measures multi-worker document verification
// against the sequential path on the same pipeline. Speedups require
// multiple CPUs (GOMAXPROCS); on a single-core host the variants tie, which
// also demonstrates that the concurrency adds no meaningful overhead.
func BenchmarkParallelVerification(b *testing.B) {
	stack, err := exp.NewStack(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	profDocs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	stats, err := stack.Profile(profDocs[:6])
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.New(core.Config{Methods: stack.Methods, Stats: stats, AccuracyTarget: 0.99})
	if err != nil {
		b.Fatal(err)
	}
	base, err := data.AggChecker(benchSeed + 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				docs := claim.CloneDocuments(base)
				b.StartTimer()
				p.VerifyDocumentsParallel(docs, workers)
			}
		})
	}
}

// BenchmarkVerifyParallel measures the wall-clock effect of claim-level
// parallelism against a latency-realistic client: llm.Throttled sleeps each
// completion's simulated API latency (compressed 1000x so seconds become
// milliseconds). Unlike BenchmarkParallelVerification, which is CPU-bound,
// this workload is wait-bound the way real LLM calls are, so the speedup at
// 8 workers reflects what deployment against a hosted API would see even on
// a single-core host.
func BenchmarkVerifyParallel(b *testing.B) {
	const latencyScale = 1e-3
	ledger := llm.NewLedger()
	client := func(model string) llm.Client {
		m, err := sim.New(model, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		return &llm.Metered{Client: &llm.Throttled{Client: m, Scale: latencyScale}, Ledger: ledger}
	}
	methods := []verify.Method{
		verify.NewOneShot(client(llm.ModelGPT35), llm.ModelGPT35, exp.MethodOneShot35),
		verify.NewOneShot(client(llm.ModelGPT4o), llm.ModelGPT4o, exp.MethodOneShot4o),
		verify.NewAgent(client(llm.ModelGPT4o), llm.ModelGPT4o, exp.MethodAgent4o, benchSeed),
		verify.NewAgent(client(llm.ModelGPT41), llm.ModelGPT41, exp.MethodAgent41, benchSeed+1),
	}
	profDocs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	stats, err := profile.Run(methods, profDocs[:6], ledger, profile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	base, err := data.AggChecker(benchSeed + 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			p, err := core.New(core.Config{
				Methods:        methods,
				Stats:          stats,
				AccuracyTarget: 0.99,
				Seed:           benchSeed,
				Workers:        workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				docs := claim.CloneDocuments(base)
				b.StartTimer()
				p.VerifyDocumentsParallel(docs, workers)
			}
		})
	}
}

// BenchmarkVerifyFaulty measures throughput under a hostile provider: the
// same wait-bound stack as BenchmarkVerifyParallel (latency compressed
// 1000x), but with deterministic fault injection under the throttle and a
// retrier above it, at 8 workers. Because Throttled charges failed attempts
// their latency, the slowdown at higher fault rates is the honest price of
// retried and rate-limited calls occupying the wire.
func BenchmarkVerifyFaulty(b *testing.B) {
	const latencyScale = 1e-3
	base, err := data.AggChecker(benchSeed + 1)
	if err != nil {
		b.Fatal(err)
	}
	profDocs, err := data.AggChecker(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, rate := range []float64{0, 0.2, 0.5} {
		b.Run(fmt.Sprintf("fault-rate-%v", rate), func(b *testing.B) {
			ledger := llm.NewLedger()
			client := func(model string) llm.Client {
				m, err := sim.New(model, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				var c llm.Client = m
				if rate > 0 {
					c = &resilience.Faulty{
						Client: c,
						Plan:   resilience.Plan{Seed: llm.SplitSeed(benchSeed, "faults", model), Rate: rate},
					}
				}
				c = &llm.Metered{Client: &llm.Throttled{Client: c, Scale: latencyScale}, Ledger: ledger}
				return &resilience.Retrier{
					Client:      c,
					MaxAttempts: 3,
					Seed:        llm.SplitSeed(benchSeed, "retry", model),
				}
			}
			methods := []verify.Method{
				verify.NewOneShot(client(llm.ModelGPT35), llm.ModelGPT35, exp.MethodOneShot35),
				verify.NewOneShot(client(llm.ModelGPT4o), llm.ModelGPT4o, exp.MethodOneShot4o),
				verify.NewAgent(client(llm.ModelGPT4o), llm.ModelGPT4o, exp.MethodAgent4o, benchSeed),
				verify.NewAgent(client(llm.ModelGPT41), llm.ModelGPT41, exp.MethodAgent41, benchSeed+1),
			}
			stats, err := profile.Run(methods, profDocs[:6], ledger, profile.Options{})
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.New(core.Config{
				Methods:        methods,
				Stats:          stats,
				AccuracyTarget: 0.99,
				Seed:           benchSeed,
				Workers:        8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				docs := claim.CloneDocuments(base)
				b.StartTimer()
				p.VerifyDocumentsParallel(docs, 8)
			}
			b.ReportMetric(float64(claim.TotalClaims(base))/b.Elapsed().Seconds()*float64(b.N), "claims/s")
		})
	}
}
