# Development targets for the CEDAR reproduction. `make check` is the full
# verification gate: build, vet, the complete test suite under the race
# detector, the chaos suite (fault injection + resilience middleware), the
# golden-trace determinism gate, the persistent-store gate (crash-recovery
# sweep + cross-process determinism), the SQL differential gate (vectorized
# executor vs row oracle + plan-cache stress), the sharded-serving gate
# (multi-replica determinism + failover), the streaming gate (stream-vs-batch
# determinism, review queue, failover duplicate-work regression), the
# ingestion gate (dataset onboarding: type inference, sampling determinism,
# cross-topology verdict identity), the routing determinism gate
# (cross-database claim decomposition and routing, DESIGN.md §16), and a
# short fuzz smoke over the SQL parser/executor, the store's segment decoder,
# the shard ring, the ingestion type-inference engine, and the claim
# decomposer/router.

GO ?= go
FUZZTIME ?= 5s

.PHONY: check build vet test race chaos trace store sqldiff shard stream ingest route fuzz-smoke doclint bench

check: build vet race chaos trace store sqldiff shard stream ingest route fuzz-smoke doclint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-mode pass over the fault-injection and resilience suites: the chaos
# determinism matrix, the breaker state machine (unit + 32-goroutine
# stress), retrier/hedge accounting, and the failed-attempt billing fixes.
chaos:
	$(GO) test -race -run 'Chaos|Breaker|Retrier|Hedge|Fault|Throttled|Metered|Resilience' \
		./internal/core ./internal/llm/resilience ./internal/llm ./cedar

# Golden-trace determinism gate under the race detector: the sorted JSONL
# trace of a run must be byte-identical across worker counts, with and
# without injected faults, plus the tracer's own unit/alloc/race suite.
trace:
	$(GO) test -race -run 'GoldenTrace|TraceSpans|Tracer|Aggregate|Quantile|Manifest|WriteJSONL' \
		./internal/core ./internal/trace

# Persistent-store gate under the race detector (DESIGN.md §11): segment
# round-trip/recovery units, the crash-recovery truncation sweep (reopen at
# every byte offset of the final record), the 32-goroutine read/write
# stress, the cache collision regression, persisted-hit replay, and the
# cross-process determinism harness (cold vs warm bit-identity, zero fees
# for persisted hits) including the cedar-serve warm-restart contract.
store:
	$(GO) test -race -run 'Store|Segment|Recovery|Persist|CrossProcess|Memo|Collision|ReplayNormalize|WarmRestart' \
		./internal/store ./internal/llm ./internal/trace ./cedar ./cmd/cedar-serve

# Documented-surface gate: every flag each binary registers must appear in
# its docs/CLI.md section (each cmd package walks its own FlagSet), every
# cedar-serve route must be in the API reference, and every package must
# open with a package comment.
doclint:
	$(GO) test -run 'Doclint' ./cmd/... ./internal/doclint

# SQL differential gate under the race detector (DESIGN.md §12): the
# old-vs-new harness (stored corpus + >=1000 generated queries through both
# the row oracle and the vectorized executor, bit-identical results and
# error surfaces), the pushdown row-count property, the plan-cache suite
# (normalized sharing, invalidation, cap, 32-goroutine mixed
# prepare/execute/invalidate stress), and the warm-cache verdict/trace
# determinism tests at the pipeline level.
sqldiff:
	$(GO) test -race -run 'Differential|PlanCache|Pushdown|ExplainQuery|WarmPlanCache|HashJoinMatches' \
		./internal/sqldb ./internal/data ./internal/core

# Sharded-serving gate under the race detector (DESIGN.md §13): ring
# determinism/minimal-movement units and the 32-goroutine membership stress,
# the replica health prober/breaker, proxy failover, coordinator
# routing/fan-out/drain-rebalance, the cmd-level multi-replica identity
# harness (bit-identical verdicts and normalized traces at shard counts
# {1,2,4,8}, including a mid-load replica kill), and the shardbench schema
# pin.
shard:
	$(GO) test -race -run 'Shard|Ring|Prober|Coordinator|Failover|Rebalance|RouteKey' \
		./internal/shard ./internal/serve ./cmd/cedar-serve ./internal/exp

# Streaming gate under the race detector (DESIGN.md §14): the NDJSON
# stream endpoint's determinism vs batch (arrival order, window size,
# faults), backpressure/slow-client behavior (a disconnecting client must
# not wedge the batcher), the review queue (ranking, idempotent resolve,
# coordinator fan-out/merge), the failover proxy's delivered-detection
# regression (zero duplicated claims, fees booked once), and streambench's
# accounting invariants.
stream:
	$(GO) test -race -run 'Stream|Review|AfterDelivery|Delivered|Disagreement|Disconnect|SlowClient' \
		./internal/serve ./internal/review ./internal/shard ./internal/verify ./cedar ./cmd/cedar-serve ./internal/exp

# Ingestion gate under the race detector (DESIGN.md §15, docs/DATA.md): the
# CSV/NDJSON/JSON parser and type-inference suites, the deterministic
# reservoir sampler, dataset persistence round-trips (encode/decode, store
# restart, base-table protection), the CLI's ingest→verify cold/warm
# bit-identity, the serving tier's /v1/datasets handlers and coordinator
# fan-out (direct run vs single replica vs 4-shard coordinator verdict
# identity), and the ingestbench accounting invariants.
ingest:
	$(GO) test -race -run 'Ingest|Dataset|Registry|Surface|Classify|CleanColumn' \
		./internal/ingest ./cmd/cedar ./cmd/cedar-serve ./internal/exp

# Routing determinism gate under the race detector (DESIGN.md §16):
# deterministic compound-claim decomposition, catalog scoring and seeded
# binding, the plan/recombine units, the cedar-level determinism matrix
# (bit-identical verdicts, fees, and normalized traces across workers {1,8}
# × fault rates {0,0.2}), the single-database degenerate byte-identity, the
# partition property test, the routed serving tier (shard counts {1,4} vs a
# direct route-enabled replica), and the routebench accounting invariants.
route:
	$(GO) test -race -run 'Route|Decompose|Combine|Catalog|UnitID' \
		./internal/route ./internal/agent ./internal/schedule ./internal/data \
		./cedar ./internal/serve ./cmd/cedar-serve ./cmd/cedar ./internal/exp ./internal/ingest

# Each fuzz target gets a short exploratory burst on top of its seed corpus
# (the seeds alone already run as part of `go test`).
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzParse$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzQuery$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzParseAndExec$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzPlanCacheKey$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzStoreDecode$$ -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run NONE -fuzz FuzzRingAssign$$ -fuzztime $(FUZZTIME) ./internal/shard
	$(GO) test -run NONE -fuzz FuzzTypeInference$$ -fuzztime $(FUZZTIME) ./internal/ingest
	$(GO) test -run NONE -fuzz FuzzDecompose$$ -fuzztime $(FUZZTIME) ./internal/route
	$(GO) test -run NONE -fuzz FuzzRouteScore$$ -fuzztime $(FUZZTIME) ./internal/route

bench:
	$(GO) test -bench . -benchmem ./...
