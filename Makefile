# Development targets for the CEDAR reproduction. `make check` is the full
# verification gate: build, vet, the complete test suite under the race
# detector, the chaos suite (fault injection + resilience middleware), and a
# short fuzz smoke over the SQL parser/executor.

GO ?= go
FUZZTIME ?= 5s

.PHONY: check build vet test race chaos fuzz-smoke bench

check: build vet race chaos fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-mode pass over the fault-injection and resilience suites: the chaos
# determinism matrix, the breaker state machine (unit + 32-goroutine
# stress), retrier/hedge accounting, and the failed-attempt billing fixes.
chaos:
	$(GO) test -race -run 'Chaos|Breaker|Retrier|Hedge|Fault|Throttled|Metered|Resilience' \
		./internal/core ./internal/llm/resilience ./internal/llm ./cedar

# Each fuzz target gets a short exploratory burst on top of its seed corpus
# (the seeds alone already run as part of `go test`).
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzParse$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzQuery$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzParseAndExec$$ -fuzztime $(FUZZTIME) ./internal/sqldb

bench:
	$(GO) test -bench . -benchmem ./...
