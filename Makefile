# Development targets for the CEDAR reproduction. `make check` is the full
# verification gate: build, vet, the complete test suite under the race
# detector, and a short fuzz smoke over the SQL parser/executor.

GO ?= go
FUZZTIME ?= 5s

.PHONY: check build vet test race fuzz-smoke bench

check: build vet race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target gets a short exploratory burst on top of its seed corpus
# (the seeds alone already run as part of `go test`).
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzParse$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzQuery$$ -fuzztime $(FUZZTIME) ./internal/sqldb
	$(GO) test -run NONE -fuzz FuzzParseAndExec$$ -fuzztime $(FUZZTIME) ./internal/sqldb

bench:
	$(GO) test -bench . -benchmem ./...
