// Command cedar-profile estimates the per-method success probability and
// cost statistics the CEDAR scheduler consumes, on one of the built-in
// benchmarks, and prints the Pareto-optimal verification schedules for a
// range of accuracy targets.
//
// Usage:
//
//	cedar-profile [-seed N] [-bench aggchecker|tabfact|wikitext] [-docs 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cedar"
	"repro/internal/exp"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/store"
	"repro/internal/trace"
)

// profileOptions carries the parsed command line into main.
type profileOptions struct {
	Seed         int64
	Bench        string
	Docs         int
	OutPath      string
	Retries      int
	Timeout      time.Duration
	FaultRate    float64
	TracePath    string
	TraceSummary bool
	CacheDir     string
}

// defineFlags registers the binary's flags on fs, bound to the returned
// options. Split from main so the doclint test can walk the registered
// FlagSet against docs/CLI.md.
func defineFlags(fs *flag.FlagSet) *profileOptions {
	o := &profileOptions{}
	fs.Int64Var(&o.Seed, "seed", 17, "random seed")
	fs.StringVar(&o.Bench, "bench", cedar.BenchAggChecker, "benchmark to profile on")
	fs.IntVar(&o.Docs, "docs", 8, "number of profiling documents")
	fs.StringVar(&o.OutPath, "o", "", "write statistics to this JSON file (readable by cedar -stats)")
	fs.IntVar(&o.Retries, "retries", 0, "retry failed retryable model calls up to N additional times")
	fs.DurationVar(&o.Timeout, "timeout", 0, "per-call simulated deadline across retries; 0 disables")
	fs.Float64Var(&o.FaultRate, "fault-rate", 0, "inject deterministic transport faults at this per-attempt probability")
	fs.StringVar(&o.TracePath, "trace", "", "write the profiling run's attempt-level trace as sorted JSONL to this file")
	fs.BoolVar(&o.TraceSummary, "trace-summary", false, "print per-model trace rollups to stderr (profiling traffic is anonymous: no attempt identities)")
	fs.StringVar(&o.CacheDir, "cache-dir", "", "record temperature-0 completions in this persistent store; profiling always re-pays (anonymous traffic never reads the store, DESIGN.md §11) but its completions warm later cedar runs")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	var tracer *trace.Tracer
	if o.TracePath != "" || o.TraceSummary {
		tracer = trace.New()
	}
	// Profiling under faults shows how provider failures skew the estimated
	// method statistics — the stack picks the knobs up via the exp default.
	exp.DefaultResilience = exp.ResilienceOptions{
		FaultRate: o.FaultRate,
		Retries:   o.Retries,
		Timeout:   o.Timeout,
		Tracer:    tracer,
	}
	if o.CacheDir != "" {
		st, err := store.Open(o.CacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cedar-profile:", err)
			os.Exit(1)
		}
		defer st.Close()
		exp.DefaultResilience.Store = st
	}
	if err := run(o.Seed, o.Bench, o.Docs, o.OutPath); err != nil {
		fmt.Fprintln(os.Stderr, "cedar-profile:", err)
		os.Exit(1)
	}
	if err := exportTrace(tracer, o.TracePath, o.TraceSummary, o.Seed); err != nil {
		fmt.Fprintln(os.Stderr, "cedar-profile:", err)
		os.Exit(1)
	}
}

// exportTrace writes the tracer's JSONL stream and/or text summary.
func exportTrace(tracer *trace.Tracer, path string, summary bool, seed int64) error {
	if tracer == nil {
		return nil
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", path, tracer.Len())
	}
	if summary {
		m := trace.Manifest{Seed: seed}
		fmt.Fprintf(os.Stderr, "manifest: %s\n%s", m.JSON(), tracer.Summary().Table())
	}
	return nil
}

func run(seed int64, bench string, nDocs int, out string) error {
	docs, err := cedar.Benchmark(bench, seed)
	if err != nil {
		return err
	}
	if nDocs > 0 && nDocs < len(docs) {
		docs = docs[:nDocs]
	}
	stack, err := exp.NewStack(seed)
	if err != nil {
		return err
	}
	stats, err := stack.Profile(docs)
	if err != nil {
		return err
	}
	fmt.Printf("profiling on %d documents of %s (seed %d):\n\n", len(docs), bench, seed)
	fmt.Printf("%-16s %10s %12s %14s\n", "Method", "Accuracy", "Cost ($)", "Latency")
	for _, s := range stats {
		fmt.Printf("%-16s %10.3f %12.5f %14v\n", s.Name, s.Accuracy, s.Cost, s.Wall.Round(1e6))
	}

	if out != "" {
		if err := profile.SaveStats(out, stats); err != nil {
			return err
		}
		fmt.Printf("\nstatistics written to %s\n", out)
	}

	fmt.Println("\noptimal schedules by accuracy target:")
	for _, target := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		plan, err := schedule.Plan(stats, 2, target)
		if err != nil {
			return err
		}
		fmt.Printf("  %.2f -> %v\n", target, plan)
	}
	return nil
}
