// Command cedar-profile estimates the per-method success probability and
// cost statistics the CEDAR scheduler consumes, on one of the built-in
// benchmarks, and prints the Pareto-optimal verification schedules for a
// range of accuracy targets.
//
// Usage:
//
//	cedar-profile [-seed N] [-bench aggchecker|tabfact|wikitext] [-docs 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cedar"
	"repro/internal/exp"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/trace"
)

func main() {
	var (
		seed      = flag.Int64("seed", 17, "random seed")
		bench     = flag.String("bench", cedar.BenchAggChecker, "benchmark to profile on")
		nDocs     = flag.Int("docs", 8, "number of profiling documents")
		out       = flag.String("o", "", "write statistics to this JSON file (readable by cedar -stats)")
		retries   = flag.Int("retries", 0, "retry failed retryable model calls up to N additional times")
		timeout   = flag.Duration("timeout", 0, "per-call simulated deadline across retries; 0 disables")
		faultRate = flag.Float64("fault-rate", 0, "inject deterministic transport faults at this per-attempt probability")
		tracePath = flag.String("trace", "", "write the profiling run's attempt-level trace as sorted JSONL to this file")
		traceSum  = flag.Bool("trace-summary", false, "print per-model trace rollups to stderr (profiling traffic is anonymous: no attempt identities)")
	)
	flag.Parse()
	var tracer *trace.Tracer
	if *tracePath != "" || *traceSum {
		tracer = trace.New()
	}
	// Profiling under faults shows how provider failures skew the estimated
	// method statistics — the stack picks the knobs up via the exp default.
	exp.DefaultResilience = exp.ResilienceOptions{
		FaultRate: *faultRate,
		Retries:   *retries,
		Timeout:   *timeout,
		Tracer:    tracer,
	}
	if err := run(*seed, *bench, *nDocs, *out); err != nil {
		fmt.Fprintln(os.Stderr, "cedar-profile:", err)
		os.Exit(1)
	}
	if err := exportTrace(tracer, *tracePath, *traceSum, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cedar-profile:", err)
		os.Exit(1)
	}
}

// exportTrace writes the tracer's JSONL stream and/or text summary.
func exportTrace(tracer *trace.Tracer, path string, summary bool, seed int64) error {
	if tracer == nil {
		return nil
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", path, tracer.Len())
	}
	if summary {
		m := trace.Manifest{Seed: seed}
		fmt.Fprintf(os.Stderr, "manifest: %s\n%s", m.JSON(), tracer.Summary().Table())
	}
	return nil
}

func run(seed int64, bench string, nDocs int, out string) error {
	docs, err := cedar.Benchmark(bench, seed)
	if err != nil {
		return err
	}
	if nDocs > 0 && nDocs < len(docs) {
		docs = docs[:nDocs]
	}
	stack, err := exp.NewStack(seed)
	if err != nil {
		return err
	}
	stats, err := stack.Profile(docs)
	if err != nil {
		return err
	}
	fmt.Printf("profiling on %d documents of %s (seed %d):\n\n", len(docs), bench, seed)
	fmt.Printf("%-16s %10s %12s %14s\n", "Method", "Accuracy", "Cost ($)", "Latency")
	for _, s := range stats {
		fmt.Printf("%-16s %10.3f %12.5f %14v\n", s.Name, s.Accuracy, s.Cost, s.Wall.Round(1e6))
	}

	if out != "" {
		if err := profile.SaveStats(out, stats); err != nil {
			return err
		}
		fmt.Printf("\nstatistics written to %s\n", out)
	}

	fmt.Println("\noptimal schedules by accuracy target:")
	for _, target := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		plan, err := schedule.Plan(stats, 2, target)
		if err != nil {
			return err
		}
		fmt.Printf("  %.2f -> %v\n", target, plan)
	}
	return nil
}
