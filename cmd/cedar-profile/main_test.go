package main

import (
	"path/filepath"
	"testing"

	"repro/cedar"
	"repro/internal/profile"
)

// TestRunWritesLoadableStats smoke-tests the command end to end: profile a
// few documents, write the stats file, and check cedar -stats could load it.
func TestRunWritesLoadableStats(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stats.json")
	if err := run(11, cedar.BenchAggChecker, 4, out); err != nil {
		t.Fatal(err)
	}
	stats, err := profile.LoadStats(out)
	if err != nil {
		t.Fatalf("written stats do not load: %v", err)
	}
	if len(stats) != 4 {
		t.Fatalf("profiled %d methods, want the standard 4-method stack", len(stats))
	}
	for _, s := range stats {
		if s.Name == "" || s.Accuracy <= 0 || s.Accuracy > 1 || s.Cost <= 0 {
			t.Errorf("implausible stats entry %+v", s)
		}
	}
}

// TestRunRejectsUnknownBenchmark covers the error path.
func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if err := run(11, "no-such-benchmark", 4, ""); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}
