// ingest.go implements the "cedar ingest" subcommand: bring-your-own-data
// onboarding. It ingests a CSV/JSON file into a sqldb catalog, generates the
// verification surface, and (with -cache-dir) persists the dataset so later
// `cedar -dataset <name>` runs — and cedar-serve replicas sharing the
// directory — verify against it. The full journey is docs/DATA.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ingest"
	"repro/internal/sqldb"
	"repro/internal/store"
	"repro/internal/trace"
)

// ingestOptions carries the parsed ingest subcommand line.
type ingestOptions struct {
	Path       string
	Table      string
	Format     string
	SampleRows int
	MaxBytes   int64
	Seed       int64
	CacheDir   string
	AsJSON     bool
	ClaimsOut  string
}

// defineIngestFlags registers the subcommand's flags on fs, bound to the
// returned options. Split from runIngest so the doclint test can walk the
// registered FlagSet against the "cedar ingest" section of docs/CLI.md.
func defineIngestFlags(fs *flag.FlagSet) *ingestOptions {
	o := &ingestOptions{}
	fs.StringVar(&o.Table, "table", "", "catalog name to register the dataset under (default: file base name)")
	fs.StringVar(&o.Format, "format", "auto", "input format: csv, ndjson, json, or auto (sniff from extension and content)")
	fs.IntVar(&o.SampleRows, "sample-rows", 0, "keep at most N rows, reservoir-sampled deterministically (default 50000)")
	fs.Int64Var(&o.MaxBytes, "max-ingest-bytes", 0, "read at most N input bytes, stopping at the last complete record (default 32 MiB)")
	fs.Int64Var(&o.Seed, "seed", 1, "salt for the sampling reservoir; same (table, seed, content) reproduces the same sample")
	fs.StringVar(&o.CacheDir, "cache-dir", "", "persist the ingested catalog in this directory so cedar -dataset and cedar-serve -dataset can load it")
	fs.BoolVar(&o.AsJSON, "json", false, "emit the ingestion summary and generated surface as JSON")
	fs.StringVar(&o.ClaimsOut, "claims-out", "", "write the generated surface claims to this file, ready for cedar -claims")
	return o
}

// runIngest executes `cedar ingest [file] [flags]`; the data file may appear
// before or after the flags.
func runIngest(args []string) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		args = append(args[1:], args[0]) // move the path behind the flags
	}
	fs := flag.NewFlagSet("cedar ingest", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: cedar ingest <file.csv|file.json|file.ndjson> [flags]")
		fs.PrintDefaults()
	}
	o := defineIngestFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one data file is required")
	}
	o.Path = rest[0]

	res, err := ingest.File(o.Path, ingest.Options{
		Table:      o.Table,
		Format:     o.Format,
		SampleRows: o.SampleRows,
		MaxBytes:   o.MaxBytes,
		Seed:       o.Seed,
	})
	if err != nil {
		return err
	}

	// Registration exercises the same path the server uses: the table enters
	// a catalog and the surface generates from it (failing here, before any
	// persistence, if the data yields no verifiable claims).
	var st *store.Store
	if o.CacheDir != "" {
		st, err = store.Open(o.CacheDir)
		if err != nil {
			return err
		}
		defer st.Close()
	}
	db := sqldb.NewDatabase(res.Name)
	reg := ingest.NewRegistry(db, st, ingest.Options{})
	ds, err := reg.Add(res)
	if err != nil {
		return err
	}

	if o.ClaimsOut != "" {
		var out []claimInput
		for _, c := range ds.Surface.Claims {
			out = append(out, claimInput{ID: c.ID, Sentence: c.Sentence, Value: c.Value, Context: c.Context})
		}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.ClaimsOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%d surface claims written to %s\n", len(out), o.ClaimsOut)
	}

	if o.AsJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Dataset *ingest.Result  `json:"dataset"`
			Surface *ingest.Surface `json:"surface"`
		}{res, ds.Surface})
	}
	fmt.Printf("ingested %s as table %q (%s)\n", o.Path, res.Name, res.Format)
	fmt.Printf("  rows: %d kept of %d scanned", res.RowsKept, res.RowsTotal)
	if res.Sampled {
		fmt.Printf(" (reservoir sample, seed %d)", res.SampleSeed)
	}
	if res.Truncated {
		fmt.Printf(" [input truncated at byte budget]")
	}
	fmt.Printf("\n  columns:\n")
	for _, c := range res.Columns {
		fmt.Printf("    %-24s %-7s", c.Name, c.Type)
		if c.Nulls > 0 {
			fmt.Printf(" (%d nulls)", c.Nulls)
		}
		fmt.Println()
	}
	fmt.Printf("  surface: %d query templates, %d claims", len(ds.Surface.Templates), len(ds.Surface.Claims))
	if ds.Surface.Entity != "" {
		fmt.Printf(" (entity column %q)", ds.Surface.Entity)
	}
	fmt.Printf("\n  fingerprint: %s\n", res.Fingerprint)
	if st != nil {
		fmt.Printf("persisted to %s; verify with: cedar -dataset %s -claims <file> -cache-dir %s\n",
			o.CacheDir, res.Name, o.CacheDir)
	} else {
		fmt.Println("not persisted (no -cache-dir); pass -cache-dir to make the dataset loadable later")
	}
	return nil
}

// loadDatasets restores the named persisted datasets from cacheDir into db,
// recording each restore's sampling decision in the trace (the span kind is
// dropped from the replay identity surface — see trace.ReplayNormalize).
// The store is opened read-and-closed here, before cedar.New reopens the
// same directory, so the two never hold it concurrently.
func loadDatasets(db *sqldb.Database, cacheDir string, names []string, tracer *trace.Tracer) ([]*ingest.Dataset, error) {
	if cacheDir == "" {
		return nil, fmt.Errorf("-dataset requires -cache-dir (datasets are loaded from the persistent store)")
	}
	st, err := store.Open(cacheDir)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	reg := ingest.NewRegistry(db, st, ingest.Options{})
	out := make([]*ingest.Dataset, 0, len(names))
	for _, name := range names {
		ds, err := reg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		if tracer != nil {
			tracer.Record(trace.Span{
				Key:    trace.Key{Doc: db.Name, Method: "ingest"},
				Kind:   trace.KindIngestSample,
				Detail: ds.Info.SampleDetail(),
			})
		}
		out = append(out, ds)
	}
	return out, nil
}
