// Command cedar verifies natural-language claims against relational data:
// it loads a CSV table and a JSON claim file, runs CEDAR's multi-stage
// verification, and reports a verdict and verification query per claim.
//
// Usage:
//
//	cedar -csv data.csv -table airlines -claims claims.json [-target 0.99] [-seed 1] [-workers 4] [-json]
//
// Your own datasets onboard through the ingest subcommand (docs/DATA.md):
//
//	cedar ingest sales.csv -table sales -cache-dir cache -claims-out claims.json
//	cedar -dataset sales -claims claims.json -cache-dir cache
//
// The claims file holds an array of objects:
//
//	[{"id": "c1",
//	  "sentence": "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.",
//	  "value": "2",
//	  "context": "optional paragraph containing the sentence"}]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cedar"
	"repro/internal/cliutil"
	"repro/internal/profile"
	"repro/internal/report"
)

type claimInput struct {
	ID       string `json:"id"`
	Sentence string `json:"sentence"`
	Value    string `json:"value"`
	Context  string `json:"context,omitempty"`
}

type claimOutput struct {
	ID       string `json:"id"`
	Correct  bool   `json:"correct"`
	Verified bool   `json:"verified"`
	Method   string `json:"method,omitempty"`
	Query    string `json:"query,omitempty"`
}

// defineFlags registers the binary's flags on fs, bound to the returned
// options. Split from main so the doclint test can walk the registered
// FlagSet against docs/CLI.md.
func defineFlags(fs *flag.FlagSet) *runOptions {
	o := &runOptions{}
	fs.Var((*cliutil.CSVList)(&o.CSVPaths), "csv", "CSV data table (header row first); repeat for multi-table databases")
	fs.Var((*cliutil.CSVList)(&o.Datasets), "dataset", "ingested dataset to load from -cache-dir (see cedar ingest and docs/DATA.md); repeatable")
	fs.StringVar(&o.TableName, "table", "", "table name for a single CSV (default: file base name)")
	fs.StringVar(&o.ClaimsPath, "claims", "", "JSON file with the claims to verify")
	fs.Float64Var(&o.Target, "target", 0.99, "accuracy target in (0,1]")
	fs.Int64Var(&o.Seed, "seed", 1, "random seed for the simulated models")
	fs.IntVar(&o.Workers, "workers", 1, "concurrent claim verifications; results are identical for any value")
	fs.BoolVar(&o.AsJSON, "json", false, "emit results as JSON")
	fs.StringVar(&o.StatsPath, "stats", "", "profiling statistics JSON (from cedar-profile -o); skips built-in profiling")
	fs.StringVar(&o.HTMLPath, "html", "", "also write a demo-style HTML report to this file")
	fs.IntVar(&o.Retries, "retries", 0, "retry failed retryable model calls up to N additional times (capped backoff, seeded jitter)")
	fs.DurationVar(&o.Timeout, "timeout", 0, "per-call simulated deadline across retries (e.g. 30s); 0 disables")
	fs.DurationVar(&o.HedgeAfter, "hedge", 0, "race a backup model call once the primary exceeds this simulated latency; 0 disables")
	fs.IntVar(&o.Breaker, "breaker", 0, "trip a per-model circuit breaker after N consecutive failures; 0 disables (order-dependent, see DESIGN.md §9)")
	fs.Float64Var(&o.FaultRate, "fault-rate", 0, "inject deterministic transport faults at this per-attempt probability (chaos testing)")
	fs.StringVar(&o.TracePath, "trace", "", "write the run's attempt-level trace as sorted JSONL to this file")
	fs.BoolVar(&o.TraceSummary, "trace-summary", false, "print per-method/per-model trace rollups and the run manifest to stderr")
	fs.StringVar(&o.CacheDir, "cache-dir", "", "persist temperature-0 completions and verdict memos in this directory; repeated runs answer persisted work at zero fee (DESIGN.md §11)")
	fs.BoolVar(&o.Route, "route", false, "decompose compound claims and route each sub-claim to the best-matching table of the loaded database (DESIGN.md §16)")
	fs.IntVar(&o.RouteTopK, "route-topk", 0, "candidate tables the routing stage considers per sub-claim; 0 uses the built-in default")
	return o
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "ingest" {
		if err := runIngest(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "cedar ingest:", err)
			os.Exit(1)
		}
		return
	}
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	if (len(o.CSVPaths) == 0 && len(o.Datasets) == 0) || o.ClaimsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*o); err != nil {
		fmt.Fprintln(os.Stderr, "cedar:", err)
		os.Exit(1)
	}
}

// runOptions carries the parsed command line into run.
type runOptions struct {
	CSVPaths     []string
	Datasets     []string
	TableName    string
	ClaimsPath   string
	Target       float64
	Seed         int64
	Workers      int
	AsJSON       bool
	StatsPath    string
	HTMLPath     string
	Retries      int
	Timeout      time.Duration
	HedgeAfter   time.Duration
	Breaker      int
	FaultRate    float64
	TracePath    string
	TraceSummary bool
	CacheDir     string
	Route        bool
	RouteTopK    int
}

func run(o runOptions) error {
	var tracer *cedar.Tracer
	if o.TracePath != "" || o.TraceSummary {
		tracer = cedar.NewTracer()
	}

	var db *cedar.Database
	var dbName string
	var err error
	if len(o.CSVPaths) > 0 {
		db, dbName, err = cliutil.LoadDatabase(o.CSVPaths, o.TableName)
		if err != nil {
			return err
		}
	} else {
		// Dataset-only run: the first dataset names the database (and the
		// seeding document ID), matching what cedar ingest registered.
		dbName = o.TableName
		if dbName == "" {
			dbName = o.Datasets[0]
		}
		db = cedar.NewDatabase(dbName)
	}
	if len(o.Datasets) > 0 {
		if _, err := loadDatasets(db, o.CacheDir, o.Datasets, tracer); err != nil {
			return err
		}
	}

	raw, err := os.ReadFile(o.ClaimsPath)
	if err != nil {
		return err
	}
	var inputs []claimInput
	if err := json.Unmarshal(raw, &inputs); err != nil {
		return fmt.Errorf("parsing %s: %w", o.ClaimsPath, err)
	}
	doc := &cedar.Document{ID: dbName, Domain: "cli", Data: db}
	for i, in := range inputs {
		if in.ID == "" {
			in.ID = fmt.Sprintf("c%d", i+1)
		}
		c, err := cedar.NewClaim(in.ID, in.Sentence, in.Value, in.Context)
		if err != nil {
			return err
		}
		doc.Claims = append(doc.Claims, c)
	}

	sys, err := cedar.New(cedar.Options{
		Seed:             o.Seed,
		AccuracyTarget:   o.Target,
		Workers:          o.Workers,
		Retries:          o.Retries,
		Timeout:          o.Timeout,
		HedgeAfter:       o.HedgeAfter,
		BreakerThreshold: o.Breaker,
		FaultRate:        o.FaultRate,
		CacheDir:         o.CacheDir,
		Route:            o.Route,
		RouteTopK:        o.RouteTopK,
		Tracer:           tracer,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	if o.Route {
		if err := sys.SetCatalog(db); err != nil {
			return err
		}
	}
	if o.StatsPath != "" {
		stats, err := profile.LoadStats(o.StatsPath)
		if err != nil {
			return err
		}
		if err := sys.SetStats(stats); err != nil {
			return err
		}
	} else {
		profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, o.Seed+100)
		if err != nil {
			return err
		}
		if err := sys.ProfileOn(profDocs[:6]); err != nil {
			return err
		}
	}
	// The claims run through the same request-scoped entry point cedar-serve
	// uses, with the database name as the seeding document ID — which is why
	// serving the same claims over HTTP reproduces this run bit for bit.
	rep, err := sys.VerifyClaims(dbName, db, doc.Claims)
	if err != nil {
		return err
	}
	if tracer != nil {
		if o.TracePath != "" {
			f, err := os.Create(o.TracePath)
			if err != nil {
				return err
			}
			if err := tracer.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", o.TracePath, tracer.Len())
		}
		if o.TraceSummary {
			fmt.Fprintf(os.Stderr, "manifest: %s\n%s", sys.TraceManifest([]*cedar.Document{doc}).JSON(), tracer.Summary().Table())
		}
	}
	if o.HTMLPath != "" {
		page, err := report.Render([]*cedar.Document{doc}, report.Summary{
			Schedule:    sys.Schedule(),
			Dollars:     rep.Dollars,
			Calls:       rep.Calls,
			GeneratedAt: time.Now(),
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.HTMLPath, page, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", o.HTMLPath)
	}

	if o.AsJSON {
		var out []claimOutput
		for _, c := range doc.Claims {
			out = append(out, claimOutput{
				ID:       c.ID,
				Correct:  c.Result.Correct,
				Verified: c.Result.Verified,
				Method:   c.Result.Method,
				Query:    c.Result.Query,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("schedule: %s\n", sys.Schedule())
	if o.Route {
		fmt.Printf("routed schedule: %s\n", sys.RoutedSchedule())
	}
	fmt.Println()
	for _, c := range doc.Claims {
		verdict := "CORRECT"
		if !c.Result.Correct {
			verdict = "INCORRECT"
		}
		fmt.Printf("%-10s %-9s %s\n", c.ID, verdict, c.Sentence)
		if c.Result.Query != "" {
			fmt.Printf("           via %s: %s\n", c.Result.Method, c.Result.Query)
		}
	}
	fmt.Printf("\n%d claims, %d flagged incorrect, simulated cost $%.4f (%d model calls)\n",
		rep.Claims, rep.Flagged, rep.Dollars, rep.Calls)
	if o.Route {
		fmt.Printf("routing: %d sub-claims routed, routing fee $%.4f\n",
			rep.RoutedSubClaims, rep.RouteDollars)
	}
	if o.CacheDir != "" {
		fmt.Printf("cache: %d persisted hits, %d memo hits, %d memo mismatches\n",
			rep.PersistedHits, rep.MemoHits, rep.MemoMismatches)
	}
	if o.Retries > 0 || o.Timeout > 0 || o.HedgeAfter > 0 || o.Breaker > 0 || o.FaultRate > 0 {
		fmt.Printf("resilience: %v\n", sys.Resilience())
	}
	return nil
}
