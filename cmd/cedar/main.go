// Command cedar verifies natural-language claims against relational data:
// it loads a CSV table and a JSON claim file, runs CEDAR's multi-stage
// verification, and reports a verdict and verification query per claim.
//
// Usage:
//
//	cedar -csv data.csv -table airlines -claims claims.json [-target 0.99] [-seed 1] [-workers 4] [-json]
//
// The claims file holds an array of objects:
//
//	[{"id": "c1",
//	  "sentence": "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.",
//	  "value": "2",
//	  "context": "optional paragraph containing the sentence"}]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/cedar"
	"repro/internal/profile"
	"repro/internal/report"
)

// csvList collects repeated -csv flags so multi-table (join) databases can
// be loaded: cedar -csv airlines.csv -csv safety.csv ...
type csvList []string

func (c *csvList) String() string { return strings.Join(*c, ",") }

func (c *csvList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

type claimInput struct {
	ID       string `json:"id"`
	Sentence string `json:"sentence"`
	Value    string `json:"value"`
	Context  string `json:"context,omitempty"`
}

type claimOutput struct {
	ID       string `json:"id"`
	Correct  bool   `json:"correct"`
	Verified bool   `json:"verified"`
	Method   string `json:"method,omitempty"`
	Query    string `json:"query,omitempty"`
}

func main() {
	var csvPaths csvList
	flag.Var(&csvPaths, "csv", "CSV data table (header row first); repeat for multi-table databases")
	var (
		tableName  = flag.String("table", "", "table name for a single CSV (default: file base name)")
		claimsPath = flag.String("claims", "", "JSON file with the claims to verify")
		target     = flag.Float64("target", 0.99, "accuracy target in (0,1]")
		seed       = flag.Int64("seed", 1, "random seed for the simulated models")
		workers    = flag.Int("workers", 1, "concurrent claim verifications; results are identical for any value")
		asJSON     = flag.Bool("json", false, "emit results as JSON")
		statsPath  = flag.String("stats", "", "profiling statistics JSON (from cedar-profile -o); skips built-in profiling")
		htmlPath   = flag.String("html", "", "also write a demo-style HTML report to this file")
		retries    = flag.Int("retries", 0, "retry failed retryable model calls up to N additional times (capped backoff, seeded jitter)")
		timeout    = flag.Duration("timeout", 0, "per-call simulated deadline across retries (e.g. 30s); 0 disables")
		hedge      = flag.Duration("hedge", 0, "race a backup model call once the primary exceeds this simulated latency; 0 disables")
		breaker    = flag.Int("breaker", 0, "trip a per-model circuit breaker after N consecutive failures; 0 disables (order-dependent, see DESIGN.md §9)")
		faultRate  = flag.Float64("fault-rate", 0, "inject deterministic transport faults at this per-attempt probability (chaos testing)")
		tracePath  = flag.String("trace", "", "write the run's attempt-level trace as sorted JSONL to this file")
		traceSum   = flag.Bool("trace-summary", false, "print per-method/per-model trace rollups and the run manifest to stderr")
	)
	flag.Parse()
	if len(csvPaths) == 0 || *claimsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	err := run(runOptions{
		CSVPaths:   csvPaths,
		TableName:  *tableName,
		ClaimsPath: *claimsPath,
		Target:     *target,
		Seed:       *seed,
		Workers:    *workers,
		AsJSON:     *asJSON,
		StatsPath:  *statsPath,
		HTMLPath:   *htmlPath,
		Retries:      *retries,
		Timeout:      *timeout,
		HedgeAfter:   *hedge,
		Breaker:      *breaker,
		FaultRate:    *faultRate,
		TracePath:    *tracePath,
		TraceSummary: *traceSum,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cedar:", err)
		os.Exit(1)
	}
}

// runOptions carries the parsed command line into run.
type runOptions struct {
	CSVPaths   []string
	TableName  string
	ClaimsPath string
	Target     float64
	Seed       int64
	Workers    int
	AsJSON     bool
	StatsPath  string
	HTMLPath   string
	Retries      int
	Timeout      time.Duration
	HedgeAfter   time.Duration
	Breaker      int
	FaultRate    float64
	TracePath    string
	TraceSummary bool
}

func run(o runOptions) error {
	csvPaths := o.CSVPaths
	tableName := o.TableName
	if tableName != "" && len(csvPaths) > 1 {
		return fmt.Errorf("-table applies to a single -csv; multi-table databases name tables by file")
	}
	dbName := tableName
	if dbName == "" {
		dbName = strings.TrimSuffix(filepath.Base(csvPaths[0]), filepath.Ext(csvPaths[0]))
	}
	db := cedar.NewDatabase(dbName)
	for _, path := range csvPaths {
		name := tableName
		if name == "" || len(csvPaths) > 1 {
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		csvFile, err := os.Open(path)
		if err != nil {
			return err
		}
		table, err := cedar.LoadCSVTable(name, csvFile)
		csvFile.Close()
		if err != nil {
			return err
		}
		db.AddTable(table)
	}

	raw, err := os.ReadFile(o.ClaimsPath)
	if err != nil {
		return err
	}
	var inputs []claimInput
	if err := json.Unmarshal(raw, &inputs); err != nil {
		return fmt.Errorf("parsing %s: %w", o.ClaimsPath, err)
	}
	doc := &cedar.Document{ID: dbName, Domain: "cli", Data: db}
	for i, in := range inputs {
		if in.ID == "" {
			in.ID = fmt.Sprintf("c%d", i+1)
		}
		c, err := cedar.NewClaim(in.ID, in.Sentence, in.Value, in.Context)
		if err != nil {
			return err
		}
		doc.Claims = append(doc.Claims, c)
	}

	var tracer *cedar.Tracer
	if o.TracePath != "" || o.TraceSummary {
		tracer = cedar.NewTracer()
	}
	sys, err := cedar.New(cedar.Options{
		Seed:             o.Seed,
		AccuracyTarget:   o.Target,
		Workers:          o.Workers,
		Retries:          o.Retries,
		Timeout:          o.Timeout,
		HedgeAfter:       o.HedgeAfter,
		BreakerThreshold: o.Breaker,
		FaultRate:        o.FaultRate,
		Tracer:           tracer,
	})
	if err != nil {
		return err
	}
	if o.StatsPath != "" {
		stats, err := profile.LoadStats(o.StatsPath)
		if err != nil {
			return err
		}
		if err := sys.SetStats(stats); err != nil {
			return err
		}
	} else {
		profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, o.Seed+100)
		if err != nil {
			return err
		}
		if err := sys.ProfileOn(profDocs[:6]); err != nil {
			return err
		}
	}
	rep, err := sys.Verify([]*cedar.Document{doc})
	if err != nil {
		return err
	}
	if tracer != nil {
		if o.TracePath != "" {
			f, err := os.Create(o.TracePath)
			if err != nil {
				return err
			}
			if err := tracer.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", o.TracePath, tracer.Len())
		}
		if o.TraceSummary {
			fmt.Fprintf(os.Stderr, "manifest: %s\n%s", sys.TraceManifest([]*cedar.Document{doc}).JSON(), tracer.Summary().Table())
		}
	}
	if o.HTMLPath != "" {
		page, err := report.Render([]*cedar.Document{doc}, report.Summary{
			Schedule:    sys.Schedule(),
			Dollars:     rep.Dollars,
			Calls:       rep.Calls,
			GeneratedAt: time.Now(),
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.HTMLPath, page, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", o.HTMLPath)
	}

	if o.AsJSON {
		var out []claimOutput
		for _, c := range doc.Claims {
			out = append(out, claimOutput{
				ID:       c.ID,
				Correct:  c.Result.Correct,
				Verified: c.Result.Verified,
				Method:   c.Result.Method,
				Query:    c.Result.Query,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("schedule: %s\n\n", sys.Schedule())
	for _, c := range doc.Claims {
		verdict := "CORRECT"
		if !c.Result.Correct {
			verdict = "INCORRECT"
		}
		fmt.Printf("%-10s %-9s %s\n", c.ID, verdict, c.Sentence)
		if c.Result.Query != "" {
			fmt.Printf("           via %s: %s\n", c.Result.Method, c.Result.Query)
		}
	}
	fmt.Printf("\n%d claims, %d flagged incorrect, simulated cost $%.4f (%d model calls)\n",
		rep.Claims, rep.Flagged, rep.Dollars, rep.Calls)
	if o.Retries > 0 || o.Timeout > 0 || o.HedgeAfter > 0 || o.Breaker > 0 || o.FaultRate > 0 {
		fmt.Printf("resilience: %v\n", sys.Resilience())
	}
	return nil
}
