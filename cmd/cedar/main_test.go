package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFixtures(t *testing.T) (csvPath, claimsPath string) {
	t.Helper()
	dir := t.TempDir()
	csvPath = filepath.Join(dir, "airlines.csv")
	if err := os.WriteFile(csvPath, []byte(
		"airline,incidents_85_99,fatal_accidents_00_14,fatalities_00_14\n"+
			"Aer Lingus,2,0,0\n"+
			"Aeroflot,76,1,88\n"+
			"Malaysia Airlines,3,2,537\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	claims := []claimInput{
		{ID: "good", Sentence: "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.", Value: "2"},
		{ID: "bad", Sentence: "The highest fatalities between 2000 and 2014 recorded was 999.", Value: "999"},
	}
	raw, err := json.Marshal(claims)
	if err != nil {
		t.Fatal(err)
	}
	claimsPath = filepath.Join(dir, "claims.json")
	if err := os.WriteFile(claimsPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath, claimsPath
}

// opts builds a baseline runOptions for the shared fixtures.
func opts(csvPaths []string, table, claimsPath string) runOptions {
	return runOptions{
		CSVPaths:   csvPaths,
		TableName:  table,
		ClaimsPath: claimsPath,
		Target:     0.99,
		Seed:       1,
		Workers:    1,
	}
}

func TestRunEndToEnd(t *testing.T) {
	csvPath, claimsPath := writeFixtures(t)
	if err := run(opts([]string{csvPath}, "airlines", claimsPath)); err != nil {
		t.Fatalf("run: %v", err)
	}
	// JSON output path and default table name derivation.
	o := opts([]string{csvPath}, "", claimsPath)
	o.Target, o.Seed, o.Workers, o.AsJSON = 0.9, 2, 2, true
	if err := run(o); err != nil {
		t.Fatalf("run json: %v", err)
	}
	// HTML report output.
	htmlPath := filepath.Join(t.TempDir(), "report.html")
	o = opts([]string{csvPath}, "airlines", claimsPath)
	o.HTMLPath = htmlPath
	if err := run(o); err != nil {
		t.Fatalf("run html: %v", err)
	}
	page, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "CEDAR verification report") {
		t.Error("HTML report missing header")
	}
}

// The resilience flags must thread through run: a chaos run with faults and
// retries completes end to end.
func TestRunWithResilienceKnobs(t *testing.T) {
	csvPath, claimsPath := writeFixtures(t)
	o := opts([]string{csvPath}, "airlines", claimsPath)
	o.FaultRate = 0.2
	o.Retries = 2
	o.Timeout = 5 * time.Minute
	o.HedgeAfter = 2 * time.Second
	if err := run(o); err != nil {
		t.Fatalf("run with faults+retries: %v", err)
	}
}

func TestRunWithStatsFile(t *testing.T) {
	csvPath, claimsPath := writeFixtures(t)
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	stats := `[{"Name":"oneshot-gpt3.5","Cost":0.0002,"Accuracy":0.8,"Wall":1000000},
	           {"Name":"oneshot-gpt4o","Cost":0.0012,"Accuracy":0.9,"Wall":2000000},
	           {"Name":"agent-gpt4o","Cost":0.003,"Accuracy":0.95,"Wall":3000000},
	           {"Name":"agent-gpt4.1","Cost":0.0024,"Accuracy":0.96,"Wall":4000000}]`
	if err := os.WriteFile(statsPath, []byte(stats), 0o644); err != nil {
		t.Fatal(err)
	}
	o := opts([]string{csvPath}, "airlines", claimsPath)
	o.StatsPath = statsPath
	if err := run(o); err != nil {
		t.Fatalf("run with stats: %v", err)
	}
	o.StatsPath = "/nonexistent-stats.json"
	if err := run(o); err == nil {
		t.Error("expected error for missing stats file")
	}
}

func TestRunErrors(t *testing.T) {
	csvPath, claimsPath := writeFixtures(t)
	if err := run(opts([]string{"/nonexistent.csv"}, "t", claimsPath)); err == nil {
		t.Error("expected error for missing CSV")
	}
	if err := run(opts([]string{csvPath}, "t", "/nonexistent.json")); err == nil {
		t.Error("expected error for missing claims file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(opts([]string{csvPath}, "t", bad)); err == nil {
		t.Error("expected error for malformed claims JSON")
	}
	// A claim whose value is absent from the sentence must be rejected.
	miss := filepath.Join(t.TempDir(), "miss.json")
	raw, _ := json.Marshal([]claimInput{{Sentence: "No value here.", Value: "42"}})
	if err := os.WriteFile(miss, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(opts([]string{csvPath}, "t", miss)); err == nil {
		t.Error("expected error for unlocatable claim value")
	}
}

func TestRunMultiTableCSV(t *testing.T) {
	dir := t.TempDir()
	airlines := filepath.Join(dir, "airlines.csv")
	os.WriteFile(airlines, []byte("airline_id,airline\n1,Aer Lingus\n2,Malaysia Airlines\n"), 0o644)
	safety := filepath.Join(dir, "safety_recent.csv")
	os.WriteFile(safety, []byte("airline_id,fatal_accidents_00_14\n1,0\n2,2\n"), 0o644)
	claims := filepath.Join(dir, "claims.json")
	raw, _ := json.Marshal([]claimInput{{
		ID:       "join",
		Sentence: "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.",
		Value:    "2",
	}})
	os.WriteFile(claims, raw, 0o644)
	o := opts([]string{airlines, safety}, "", claims)
	o.Seed, o.Workers = 3, 2
	if err := run(o); err != nil {
		t.Fatalf("multi-table run: %v", err)
	}
	// -table with multiple CSVs is rejected.
	o.TableName = "t"
	if err := run(o); err == nil {
		t.Error("expected -table + multi-csv error")
	}
}
