package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/doclint"
)

// TestDoclintFlags is this binary's half of the documented-surface gate:
// every flag defineFlags registers must appear in the cedar section of
// docs/CLI.md.
func TestDoclintFlags(t *testing.T) {
	doc, err := doclint.CLIDoc()
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("cedar", flag.ContinueOnError)
	defineFlags(fs)
	missing, err := doclint.MissingFlags(doc, "cedar", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("flags undocumented in docs/CLI.md: -%s", strings.Join(missing, ", -"))
	}
}
