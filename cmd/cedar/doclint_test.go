package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/doclint"
)

// TestDoclintFlags is this binary's half of the documented-surface gate:
// every flag defineFlags registers must appear in the cedar section of
// docs/CLI.md.
func TestDoclintFlags(t *testing.T) {
	doc, err := doclint.CLIDoc()
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("cedar", flag.ContinueOnError)
	defineFlags(fs)
	missing, err := doclint.MissingFlags(doc, "cedar", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("flags undocumented in docs/CLI.md: -%s", strings.Join(missing, ", -"))
	}
}

// The ingest subcommand has its own docs/CLI.md section; every flag
// defineIngestFlags registers must appear there.
func TestDoclintIngestFlags(t *testing.T) {
	doc, err := doclint.CLIDoc()
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("cedar ingest", flag.ContinueOnError)
	defineIngestFlags(fs)
	missing, err := doclint.MissingFlags(doc, "cedar ingest", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("ingest flags undocumented in docs/CLI.md: -%s", strings.Join(missing, ", -"))
	}
}
