package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

const salesCSVFixture = `region,product,units,revenue
north,widget,12,1034.50
south,gadget,7,812.25
east,widget,31,2200.00
west,sprocket,5,150.00
north,gadget,19,1500.75
`

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		out, _ := io.ReadAll(r)
		done <- out
	}()
	ferr := fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	if ferr != nil {
		t.Fatalf("captured run failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// TestIngestColdWarmDeterminism is the CLI half of the onboarding journey:
// `cedar ingest` persists a dataset, `cedar -dataset` verifies against it,
// and every repetition — re-ingesting the same file, reloading the catalog
// in a fresh run — reproduces byte-identical output.
func TestIngestColdWarmDeterminism(t *testing.T) {
	dir := t.TempDir()
	salesPath := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(salesPath, []byte(salesCSVFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	claimsPath := filepath.Join(dir, "claims.json")

	// Ingest with the path in front of the flags (the documented invocation),
	// writing the surface claims for the verification run below.
	ingestArgs := []string{salesPath, "-table", "sales", "-cache-dir", cacheDir, "-claims-out", claimsPath}
	first := captureStdout(t, func() error { return runIngest(ingestArgs) })
	if !bytes.Contains(first, []byte(`table "sales"`)) || !bytes.Contains(first, []byte("persisted to")) {
		t.Fatalf("ingest summary:\n%s", first)
	}

	// Re-ingesting the identical file is idempotent: same registration, same
	// fingerprint, same summary bytes.
	again := captureStdout(t, func() error { return runIngest(ingestArgs) })
	if !bytes.Equal(first, again) {
		t.Fatalf("re-ingest output diverged:\nfirst:\n%s\nagain:\n%s", first, again)
	}

	raw, err := os.ReadFile(claimsPath)
	if err != nil {
		t.Fatal(err)
	}
	var claims []claimInput
	if err := json.Unmarshal(raw, &claims); err != nil {
		t.Fatal(err)
	}
	if len(claims) < 8 {
		t.Fatalf("only %d surface claims written", len(claims))
	}

	// Cold and warm verification runs load the dataset from the store; the
	// JSON verdict stream must repeat bit for bit.
	o := runOptions{
		Datasets:   []string{"sales"},
		CacheDir:   cacheDir,
		ClaimsPath: claimsPath,
		Target:     0.99,
		Seed:       1,
		Workers:    2,
		AsJSON:     true,
	}
	cold := captureStdout(t, func() error { return run(o) })
	warm := captureStdout(t, func() error { return run(o) })
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold/warm verification output diverged:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	var results []claimOutput
	if err := json.Unmarshal(cold, &results); err != nil {
		t.Fatalf("parsing verification output: %v\n%s", err, cold)
	}
	if len(results) != len(claims) {
		t.Fatalf("verified %d claims, ingested surface has %d", len(results), len(claims))
	}
	for _, r := range results {
		if r.Method == "" {
			t.Fatalf("claim %s has no verification method: %+v", r.ID, r)
		}
	}
}

func TestIngestAndDatasetErrors(t *testing.T) {
	dir := t.TempDir()
	salesPath := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(salesPath, []byte(salesCSVFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	claimsPath := filepath.Join(dir, "claims.json")
	raw, _ := json.Marshal([]claimInput{{ID: "c", Sentence: "units total 74.", Value: "74"}})
	if err := os.WriteFile(claimsPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runIngest([]string{filepath.Join(dir, "missing.csv")}); err == nil {
		t.Error("expected error for missing input file")
	}

	// -dataset without -cache-dir has nowhere to load from.
	o := runOptions{Datasets: []string{"sales"}, ClaimsPath: claimsPath, Target: 0.99, Seed: 1, Workers: 1}
	if err := run(o); err == nil {
		t.Error("expected error for -dataset without -cache-dir")
	}

	// A dataset that was never ingested into the store is an error, not an
	// empty catalog.
	o.CacheDir = filepath.Join(dir, "cache")
	if err := runIngest([]string{salesPath, "-table", "sales", "-cache-dir", o.CacheDir}); err != nil {
		t.Fatal(err)
	}
	o.Datasets = []string{"nope"}
	if err := run(o); err == nil {
		t.Error("expected error for unknown dataset name")
	}
}
