package main

import (
	"strings"
	"testing"
)

// TestRunExperimentsTable3 smoke-tests the cheapest experiment end to end:
// it must match, render non-empty output, and carry the header line.
func TestRunExperimentsTable3(t *testing.T) {
	var b strings.Builder
	ran, err := runExperiments(&b, "table3", 17, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("table3 did not match any experiment")
	}
	out := b.String()
	if !strings.Contains(out, "== Table 3") {
		t.Errorf("missing header in output:\n%s", out)
	}
	if len(strings.TrimSpace(out)) < 100 {
		t.Errorf("suspiciously short output:\n%s", out)
	}
}

// TestRunExperimentsCSV checks the -csv rendering path emits a commented
// header plus comma-separated rows.
func TestRunExperimentsCSV(t *testing.T) {
	var b strings.Builder
	ran, err := runExperiments(&b, "table3", 17, 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("table3 did not match any experiment")
	}
	out := b.String()
	if !strings.HasPrefix(out, "# table3 (seed 17)") {
		t.Errorf("missing CSV comment header:\n%s", out)
	}
	if !strings.Contains(out, ",") {
		t.Errorf("no CSV rows in output:\n%s", out)
	}
}

// TestRunExperimentsWorkersDeterministic runs a verification-bearing
// experiment at 1 and 4 workers and requires identical reports — the
// command-level view of the determinism contract.
func TestRunExperimentsWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full joinbench twice")
	}
	var seq, par strings.Builder
	if _, err := runExperiments(&seq, "joinbench", 17, 1, false, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := runExperiments(&par, "joinbench", 17, 4, false, nil); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("joinbench output differs between 1 and 4 workers:\n--- workers=1\n%s\n--- workers=4\n%s", seq.String(), par.String())
	}
}

// TestRunExperimentsUnknown verifies unknown names report "did not run"
// instead of erroring, which main turns into a usage message.
func TestRunExperimentsUnknown(t *testing.T) {
	var b strings.Builder
	ran, err := runExperiments(&b, "no-such-experiment", 17, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("unknown experiment reported as ran")
	}
	if b.Len() != 0 {
		t.Errorf("unknown experiment produced output: %q", b.String())
	}
}
