// Command cedar-bench regenerates the paper's evaluation artifacts: every
// table and figure of Section 7 has a corresponding experiment id.
//
// Usage:
//
//	cedar-bench [-seed N] [-workers N] <experiment>
//
// Experiments:
//
//	table2     Table 2  — result quality of CEDAR vs baselines
//	costs      §7.2     — CEDAR verification fees per dataset
//	fig5       Figure 5 — cost/throughput vs F1 trade-off curves
//	fig6       Figure 6 — F1 change under unit conversions
//	table3     Table 3  — query complexity statistics
//	joinbench  §7.3.2   — F1 and cost under schema normalization
//	fig7       Figure 7 — schedule robustness across domains
//	modelfit   extended report — modeled vs realized accuracy
//	servebench serving mode — req/s and latency quantiles under HTTP load
//	shardbench sharded serving — aggregate throughput vs replica count at 10k clients
//	storebench persistent store — cold vs warm fees, calls, and hit rate
//	sqlbench   SQL engine — vectorized executor vs row oracle, plan cache cold vs warm
//	streambench streamed vs batched delivery — time-to-first-verdict and claims/sec
//	ingestbench dataset onboarding — CSV/NDJSON ingest throughput, sampling, surface quality
//	routebench cross-database routing — routing accuracy, routed vs home-db quality and cost
//	all        run everything above
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/store"
	"repro/internal/trace"
)

type result interface{ Render() string }

// csvResult is implemented by every experiment result (see internal/exp
// csv.go); -csv switches output to machine-readable series for plotting.
type csvResult interface{ CSV() string }

type experiment struct {
	name string
	desc string
	run  func(seed int64, workers int) (result, error)
}

func experiments() []experiment {
	return []experiment{
		{"table2", "Table 2: result quality of CEDAR vs baselines", func(s int64, w int) (result, error) {
			return exp.Table2(s, w)
		}},
		{"costs", "Section 7.2: CEDAR verification fees per dataset", func(s int64, w int) (result, error) {
			return exp.Costs(s, w)
		}},
		{"fig5", "Figure 5: cost/throughput vs F1 trade-offs", func(s int64, w int) (result, error) {
			return exp.Fig5(s, w)
		}},
		{"fig6", "Figure 6: F1 change under unit conversions", func(s int64, w int) (result, error) {
			return exp.Fig6(s, w)
		}},
		{"table3", "Table 3: query complexity statistics", func(s int64, _ int) (result, error) {
			return exp.Table3(s) // corpus statistics only; nothing to parallelize
		}},
		{"joinbench", "Section 7.3.2: schema normalization", func(s int64, w int) (result, error) {
			return exp.JoinBench(s, w)
		}},
		{"fig7", "Figure 7: schedule robustness across domains", func(s int64, w int) (result, error) {
			return exp.Fig7(s, w)
		}},
		{"modelfit", "Extended report: modeled vs realized accuracy (independence assumptions)", func(s int64, w int) (result, error) {
			return exp.ModelFit(s, w)
		}},
		{"servebench", "Serving mode: req/s and latency quantiles under concurrent HTTP load", func(s int64, w int) (result, error) {
			return exp.ServeBench(s, w)
		}},
		{"shardbench", "Sharded serving: aggregate throughput vs replica count at 10k concurrent clients", func(s int64, w int) (result, error) {
			return exp.ShardBench(s, w)
		}},
		{"storebench", "Persistent result store: cold vs warm fees, calls, and hit rate", func(s int64, w int) (result, error) {
			return exp.StoreBench(s, w)
		}},
		{"sqlbench", "SQL engine: vectorized executor vs row oracle, plan cache cold vs warm", func(s int64, w int) (result, error) {
			return exp.SQLBench(s, w)
		}},
		{"streambench", "Streamed vs batched delivery: time-to-first-verdict and sustained claims/sec", func(s int64, w int) (result, error) {
			return exp.StreamBench(s, w)
		}},
		{"ingestbench", "Dataset onboarding: CSV/NDJSON ingest throughput, sampling, and surface verification quality", func(s int64, w int) (result, error) {
			return exp.IngestBench(s, w)
		}},
		{"routebench", "Cross-database routing: routing accuracy, routed vs home-db verification quality and cost", func(s int64, w int) (result, error) {
			return exp.RouteBench(s, w)
		}},
	}
}

// benchOptions carries the parsed command line into main.
type benchOptions struct {
	Seed         int64
	Workers      int
	AsCSV        bool
	Retries      int
	Timeout      time.Duration
	HedgeAfter   time.Duration
	Breaker      int
	FaultRate    float64
	TracePath    string
	TraceSummary bool
	CacheDir     string
	StoreJSON    string
	SQLJSON      string
	ShardJSON    string
	StreamJSON   string
	IngestJSON   string
	RouteJSON    string
}

// defineFlags registers the binary's flags on fs, bound to the returned
// options. Split from main so the doclint test can walk the registered
// FlagSet against docs/CLI.md.
func defineFlags(fs *flag.FlagSet) *benchOptions {
	o := &benchOptions{}
	fs.Int64Var(&o.Seed, "seed", 17, "random seed (runs are fully reproducible per seed)")
	fs.IntVar(&o.Workers, "workers", 1, "concurrent claim verifications; results are identical for any value")
	fs.BoolVar(&o.AsCSV, "csv", false, "emit CSV series instead of formatted text")
	fs.IntVar(&o.Retries, "retries", 0, "retry failed retryable model calls up to N additional times")
	fs.DurationVar(&o.Timeout, "timeout", 0, "per-call simulated deadline across retries; 0 disables")
	fs.DurationVar(&o.HedgeAfter, "hedge", 0, "race a backup model call after this simulated latency; 0 disables")
	fs.IntVar(&o.Breaker, "breaker", 0, "per-model circuit breaker threshold; 0 disables")
	fs.Float64Var(&o.FaultRate, "fault-rate", 0, "inject deterministic transport faults at this per-attempt probability")
	fs.StringVar(&o.TracePath, "trace", "", "write the final pipeline run's attempt-level trace as sorted JSONL to this file")
	fs.BoolVar(&o.TraceSummary, "trace-summary", false, "print per-method/per-model trace rollups and the run manifest to stderr")
	fs.StringVar(&o.CacheDir, "cache-dir", "", "persist temperature-0 completions in this directory; repeated experiment runs answer persisted work at zero fee (DESIGN.md §11)")
	fs.StringVar(&o.StoreJSON, "store-json", "", "write the storebench result as JSON to this file (e.g. BENCH_store.json)")
	fs.StringVar(&o.SQLJSON, "sqlbench-json", "", "write the sqlbench result as JSON to this file (e.g. BENCH_sql.json)")
	fs.StringVar(&o.ShardJSON, "shard-json", "", "write the shardbench result as JSON to this file (e.g. BENCH_shard.json)")
	fs.StringVar(&o.StreamJSON, "stream-json", "", "write the streambench result as JSON to this file (e.g. BENCH_stream.json)")
	fs.StringVar(&o.IngestJSON, "ingest-json", "", "write the ingestbench result as JSON to this file (e.g. BENCH_ingest.json)")
	fs.StringVar(&o.RouteJSON, "route-json", "", "write the routebench result as JSON to this file (e.g. BENCH_route.json)")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	var tracer *trace.Tracer
	if o.TracePath != "" || o.TraceSummary {
		// Experiment drivers reset the tracer per pipeline run (like the
		// ledger), so the exported trace covers the last run executed.
		tracer = trace.New()
	}
	// Experiment drivers build their stacks internally via exp.NewStack, so
	// the resilience knobs travel through the package default.
	exp.DefaultResilience = exp.ResilienceOptions{
		FaultRate:        o.FaultRate,
		Retries:          o.Retries,
		Timeout:          o.Timeout,
		HedgeAfter:       o.HedgeAfter,
		BreakerThreshold: o.Breaker,
		Tracer:           tracer,
	}
	if o.CacheDir != "" {
		st, err := store.Open(o.CacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cedar-bench:", err)
			os.Exit(1)
		}
		defer st.Close()
		exp.DefaultResilience.Store = st
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	ran, err := runExperiments(os.Stdout, flag.Arg(0), o.Seed, o.Workers, o.AsCSV,
		map[string]string{"storebench": o.StoreJSON, "sqlbench": o.SQLJSON, "shardbench": o.ShardJSON, "streambench": o.StreamJSON, "ingestbench": o.IngestJSON, "routebench": o.RouteJSON})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cedar-bench:", err)
		os.Exit(1)
	}
	if !ran {
		usage()
		os.Exit(2)
	}
	if err := exportTrace(tracer, o.TracePath, o.TraceSummary, o.Seed, o.Workers); err != nil {
		fmt.Fprintln(os.Stderr, "cedar-bench:", err)
		os.Exit(1)
	}
}

// exportTrace writes the tracer's JSONL stream and/or text summary.
func exportTrace(tracer *trace.Tracer, path string, summary bool, seed int64, workers int) error {
	if tracer == nil {
		return nil
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", path, tracer.Len())
	}
	if summary {
		m := trace.Manifest{Seed: seed, Workers: workers}
		fmt.Fprintf(os.Stderr, "manifest: %s\n%s", m.JSON(), tracer.Summary().Table())
	}
	return nil
}

// jsonResult is implemented by results with a machine-readable JSON artifact
// (storebench via -store-json, sqlbench via -sqlbench-json, shardbench via
// -shard-json, streambench via -stream-json, ingestbench via -ingest-json,
// routebench via -route-json).
type jsonResult interface{ JSON() ([]byte, error) }

// runExperiments executes every experiment matching want ("all" matches
// each) and writes its rendering to w. jsonPaths maps experiment names to
// destination files for their JSON artifacts. It reports whether anything
// matched.
func runExperiments(w io.Writer, want string, seed int64, workers int, asCSV bool, jsonPaths map[string]string) (bool, error) {
	ran := false
	for _, e := range experiments() {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		res, err := e.run(seed, workers)
		if err != nil {
			return ran, fmt.Errorf("%s: %w", e.name, err)
		}
		if path := jsonPaths[e.name]; path != "" {
			if j, ok := res.(jsonResult); ok {
				blob, err := j.JSON()
				if err != nil {
					return ran, fmt.Errorf("%s: %w", e.name, err)
				}
				if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
					return ran, fmt.Errorf("%s: %w", e.name, err)
				}
				fmt.Fprintf(os.Stderr, "%s result written to %s\n", e.name, path)
			}
		}
		if asCSV {
			if c, ok := res.(csvResult); ok {
				fmt.Fprintf(w, "# %s (seed %d)\n%s", e.name, seed, c.CSV())
				continue
			}
		}
		fmt.Fprintf(w, "== %s (seed %d) ==\n", e.desc, seed)
		fmt.Fprintln(w, res.Render())
	}
	return ran, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cedar-bench [-seed N] [-workers N] <experiment>")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run everything")
}
