package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/doclint"
)

// TestDoclintFlags is this binary's half of the documented-surface gate:
// every flag defineFlags registers must appear in the cedar-bench section
// of docs/CLI.md — and so must every experiment id.
func TestDoclintFlags(t *testing.T) {
	doc, err := doclint.CLIDoc()
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("cedar-bench", flag.ContinueOnError)
	defineFlags(fs)
	missing, err := doclint.MissingFlags(doc, "cedar-bench", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("flags undocumented in docs/CLI.md: -%s", strings.Join(missing, ", -"))
	}
	section, err := doclint.BinarySection(doc, "cedar-bench")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range experiments() {
		if !strings.Contains(section, "`"+e.name+"`") {
			t.Errorf("experiment %q undocumented in docs/CLI.md", e.name)
		}
	}
}
