package main

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/cedar"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/ingest"
	"repro/internal/serve"
)

const salesFixtureCSV = `region,product,units,revenue
north,widget,12,1034.50
south,gadget,7,812.25
east,widget,31,2200.00
west,sprocket,5,150.00
north,gadget,19,1500.75
`

// postDataset ingests the sales fixture through base's POST /v1/datasets
// (raw body + query parameters) and returns the response.
func postDataset(t *testing.T, base string) serve.DatasetResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/datasets?name=sales&seed=1", "text/csv",
		strings.NewReader(salesFixtureCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/datasets = %d: %s", resp.StatusCode, body)
	}
	var out serve.DatasetResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// verifyClaims posts one verification request and returns the claim results.
func verifyClaims(t *testing.T, base, docID string, claims []serve.ClaimInput) []serve.ClaimResult {
	t.Helper()
	body, err := json.Marshal(serve.VerifyRequest{DocID: docID, Claims: claims})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/verify = %d: %s", resp.StatusCode, raw)
	}
	var out serve.VerifyResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out.Claims
}

// getJSONStatus fetches one URL, returning the status code and body.
func getJSONStatus(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestIngestedDatasetServingIdentity is the ingest acceptance gate: a
// dataset onboarded over HTTP yields bit-identical verdicts on a direct
// library run, a single served replica, and a 4-shard coordinator tier —
// and the coordinator's fan-out leaves every replica holding the same
// catalog (same fingerprint), which is what keeps ring routing
// verdict-deterministic.
func TestIngestedDatasetServingIdentity(t *testing.T) {
	csvPath := writeCSVFixture(t)
	const docID = "sales-doc"
	o := testOptions(t, csvPath)
	o.BatchWait = -1

	// The surface claims come from an in-process ingestion over the same
	// base fixture; claim generation is deterministic, so the HTTP-ingested
	// replicas will accept exactly these sentences.
	db, _, err := cliutil.LoadDatabase(o.CSVPaths, o.TableName)
	if err != nil {
		t.Fatal(err)
	}
	reg := ingest.NewRegistry(db, nil, ingest.Options{Seed: 1})
	ds, err := reg.IngestBytes([]byte(salesFixtureCSV), ingest.Options{Table: "sales"})
	if err != nil {
		t.Fatal(err)
	}
	var claims []serve.ClaimInput
	for _, c := range ds.Surface.Claims {
		claims = append(claims, serve.ClaimInput{ID: c.ID, Sentence: c.Sentence, Value: c.Value, Context: c.Context})
	}
	if len(claims) < 8 {
		t.Fatalf("surface generated only %d claims", len(claims))
	}

	// Reference: the library entry point with the serving tier's profiling
	// and resilience configuration.
	sr := exp.ServingResilience()
	sys, err := cedar.New(cedar.Options{
		Seed:           o.Seed,
		AccuracyTarget: o.Target,
		Workers:        o.Workers,
		Retries:        sr.Retries,
		Timeout:        sr.Timeout,
		HedgeAfter:     sr.HedgeAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, o.Seed+100)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	var direct []*cedar.Claim
	for _, in := range claims {
		c, err := cedar.NewClaim(in.ID, in.Sentence, in.Value, in.Context)
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, c)
	}
	if _, err := sys.VerifyClaims(docID, db, direct); err != nil {
		t.Fatal(err)
	}
	want := make([]serve.ClaimResult, 0, len(direct))
	for _, c := range direct {
		want = append(want, serve.ClaimResult{
			ID: c.ID, Correct: c.Result.Correct, Verified: c.Result.Verified,
			Method: c.Result.Method, Query: c.Result.Query,
			Attempts: c.Result.Attempts, Failure: c.Result.Failure,
		})
	}

	// Single replica: onboard over HTTP, then verify.
	srv, closeSys, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	created := postDataset(t, ts.URL)
	if created.Dataset.Fingerprint != ds.Info.Fingerprint {
		t.Fatalf("HTTP ingest fingerprint %s, direct %s", created.Dataset.Fingerprint, ds.Info.Fingerprint)
	}
	single := verifyClaims(t, ts.URL, docID, claims)
	ctx, cancel := contextWithTimeout(5 * time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	closeSys()

	if !reflect.DeepEqual(single, want) {
		t.Fatalf("single-replica verdicts diverge from direct run:\nserved %+v\ndirect %+v", single, want)
	}

	// 4-shard tier: the coordinator broadcasts the ingestion to every
	// replica, then routes the verification to whichever replica owns the
	// request's key.
	tier := bootShardTier(t, csvPath, 4, nil)
	coordCreated := postDataset(t, tier.coordTS.URL)
	if coordCreated.Dataset.Fingerprint != ds.Info.Fingerprint {
		t.Fatalf("coordinator ingest fingerprint %s, want %s", coordCreated.Dataset.Fingerprint, ds.Info.Fingerprint)
	}
	for i, rep := range tier.replicas {
		status, body := getJSONStatus(t, rep.ts.URL+"/v1/datasets/sales")
		if status != http.StatusOK {
			t.Fatalf("replica %d missing dataset after broadcast: %d", i, status)
		}
		var got serve.DatasetResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Dataset.Fingerprint != ds.Info.Fingerprint {
			t.Fatalf("replica %d fingerprint %s, want %s", i, got.Dataset.Fingerprint, ds.Info.Fingerprint)
		}
	}
	sharded := verifyClaims(t, tier.coordTS.URL, docID, claims)
	if !reflect.DeepEqual(sharded, want) {
		t.Fatalf("4-shard verdicts diverge from direct run:\nsharded %+v\ndirect %+v", sharded, want)
	}

	// The list view merges through the coordinator (first healthy replica).
	status, body := getJSONStatus(t, tier.coordTS.URL+"/v1/datasets")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/datasets via coordinator = %d", status)
	}
	var list serve.DatasetListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "sales" {
		t.Fatalf("coordinator dataset list = %s", body)
	}

	// DELETE broadcasts: afterwards every replica 404s the dataset.
	req, err := http.NewRequest(http.MethodDelete, tier.coordTS.URL+"/v1/datasets/sales", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE via coordinator = %d", resp.StatusCode)
	}
	for i, rep := range tier.replicas {
		if status, _ := getJSONStatus(t, rep.ts.URL+"/v1/datasets/sales"); status != http.StatusNotFound {
			t.Fatalf("replica %d still has dataset after broadcast delete: %d", i, status)
		}
	}
}

// TestDatasetEndpointValidation covers the single-server API edges: missing
// name, unknown dataset, base-table protection, and budget enforcement on
// oversized input.
func TestDatasetEndpointValidation(t *testing.T) {
	csvPath := writeCSVFixture(t)
	o := testOptions(t, csvPath)
	o.BatchWait = -1
	o.SampleRows = 3 // tiny row budget so the fixture triggers sampling
	srv, closeSys, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSys()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Missing name rejects.
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", strings.NewReader(salesFixtureCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless ingest = %d, want 400", resp.StatusCode)
	}

	// A name colliding with the -csv base table rejects.
	resp, err = http.Post(ts.URL+"/v1/datasets?name=airlines", "text/csv", strings.NewReader(salesFixtureCSV))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("base-table collision = %d, want 400", resp.StatusCode)
	}

	// Unknown dataset 404s for GET and DELETE.
	if status, _ := getJSONStatus(t, ts.URL+"/v1/datasets/nope"); status != http.StatusNotFound {
		t.Fatalf("GET unknown dataset = %d, want 404", status)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown dataset = %d, want 404", resp.StatusCode)
	}

	// The server's -sample-rows default applies to ingestions that don't
	// set their own budget: 5 fixture rows through a 3-row reservoir.
	created := postDataset(t, ts.URL)
	if !created.Dataset.Sampled || created.Dataset.RowsKept != 3 || created.Dataset.RowsTotal != 5 {
		t.Fatalf("sampling budget not enforced: %+v", created.Dataset)
	}

	// Multipart upload round-trips too, registering a second dataset.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, f := range [][2]string{{"name", "sales2"}, {"seed", "1"}} {
		if err := mw.WriteField(f[0], f[1]); err != nil {
			t.Fatal(err)
		}
	}
	fw, err := mw.CreateFormFile("file", "sales.csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fw, salesFixtureCSV); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multipart ingest = %d: %s", resp.StatusCode, body)
	}
	var out serve.DatasetResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Dataset.Name != "sales2" || !out.Dataset.Sampled {
		t.Fatalf("multipart ingest result: %+v", out.Dataset)
	}
}
