// Command cedar-serve exposes CEDAR claim verification as a long-running
// HTTP service: it loads a CSV database, profiles (or loads) the method
// statistics once, and then serves claim-verification requests, coalescing
// concurrent requests into micro-batches over the shared worker pool.
//
// Usage:
//
//	cedar-serve -csv data.csv [-addr :8080] [-target 0.99] [-seed 1] [-workers 8]
//
// Routes (full API reference in docs/CLI.md):
//
//	POST /v1/verify         verify one document's claims
//	POST /v1/verify/batch   verify several documents in one request
//	POST /v1/verify/stream  NDJSON documents in, streamed verdicts out
//	GET  /v1/review         pending human-review queue, ranked
//	POST /v1/review/{id}    record a human resolution for one review item
//	POST   /v1/datasets        ingest a CSV/JSON dataset into the catalog
//	GET    /v1/datasets        list ingested datasets
//	GET    /v1/datasets/{name} one dataset's schema, budget, and surface
//	DELETE /v1/datasets/{name} remove an ingested dataset
//	GET  /v1/status         serving state and queue depth
//	GET  /v1/metrics        request, verification, and resilience counters
//	GET  /healthz           liveness (503 while draining)
//
// A served run is bit-identical to the equivalent `cedar` CLI run: same
// seed, same database, same claims ⇒ same verdicts and fees, regardless of
// how requests were batched. SIGINT/SIGTERM drain gracefully: admitted
// requests finish, new ones get 503, then the process exits.
//
// The binary also scales out horizontally (DESIGN.md §13). With
// -coordinator it verifies nothing itself: it routes each request to one of
// the -replicas processes by the consistent hash of the request's
// claim/config fingerprint, health-probes the replicas (ejecting dead or
// draining ones and rehashing their keyspace), and merges fan-out batches.
// A replica started with -replica-of registers itself with its coordinator
// on startup and deregisters as the first step of its graceful drain.
// Because verdicts are deterministic per (seed, database, claims), every
// shard count serves bit-identical responses — sharding buys throughput,
// never different answers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cedar"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sqldb"
	"repro/internal/trace"
)

// serveOptions carries the parsed command line into run.
type serveOptions struct {
	CSVPaths  []string
	Datasets  []string
	TableName string
	Addr      string
	Target    float64
	Seed      int64
	Workers   int
	StatsPath string

	MaxBatch       int
	BatchWait      time.Duration
	QueueDepth     int
	RequestTimeout time.Duration
	RetryAfter     time.Duration
	DrainTimeout   time.Duration
	StreamWindow   int
	ReviewCap      int

	Retries    int
	Timeout    time.Duration
	HedgeAfter time.Duration
	Breaker    int
	FaultRate  float64

	CacheDir string

	Route     bool
	RouteTopK int

	SampleRows     int
	MaxIngestBytes int64

	Coordinator   bool
	Replicas      []string
	ReplicaOf     string
	ProbeInterval time.Duration
}

// defineFlags registers the binary's flags on fs, bound to the returned
// options. Split from main so the doclint test can walk the registered
// FlagSet against docs/CLI.md. The resilience defaults come from
// exp.ServingResilience: unlike the batch CLIs, a service retries and
// hedges by default.
func defineFlags(fs *flag.FlagSet) *serveOptions {
	o := &serveOptions{}
	sr := exp.ServingResilience()
	fs.Var((*cliutil.CSVList)(&o.CSVPaths), "csv", "CSV data table (header row first); repeat for multi-table databases")
	fs.Var((*cliutil.CSVList)(&o.Datasets), "dataset", "ingested dataset to load from -cache-dir at startup (see cedar ingest and docs/DATA.md); repeatable")
	fs.StringVar(&o.TableName, "table", "", "table name for a single CSV (default: file base name)")
	fs.StringVar(&o.Addr, "addr", ":8080", "listen address")
	fs.Float64Var(&o.Target, "target", 0.99, "accuracy target in (0,1]")
	fs.Int64Var(&o.Seed, "seed", 1, "random seed for the simulated models")
	fs.IntVar(&o.Workers, "workers", 8, "concurrent claim verifications per micro-batch; results are identical for any value")
	fs.StringVar(&o.StatsPath, "stats", "", "profiling statistics JSON (from cedar-profile -o); skips built-in profiling")
	fs.IntVar(&o.MaxBatch, "max-batch", 8, "documents coalesced into one micro-batch at most")
	fs.DurationVar(&o.BatchWait, "batch-wait", 2*time.Millisecond, "how long to linger for more requests before flushing a partial micro-batch")
	fs.IntVar(&o.QueueDepth, "queue-depth", 64, "admitted requests waiting for a batch slot before new ones shed with 429")
	fs.DurationVar(&o.RequestTimeout, "request-timeout", 60*time.Second, "per-request deadline propagated via context; expired requests answer 504")
	fs.DurationVar(&o.RetryAfter, "retry-after", 0, "Retry-After hint on 429 responses (default: estimated queue drain time, min 1s)")
	fs.DurationVar(&o.DrainTimeout, "drain-timeout", 30*time.Second, "how long graceful shutdown waits for admitted requests to finish")
	fs.IntVar(&o.StreamWindow, "stream-window", 4, "documents one /v1/verify/stream request may have in flight; past it the server stops reading the stream (backpressure)")
	fs.IntVar(&o.ReviewCap, "review-cap", 256, "pending human-review items kept; at the cap new items evict only lower-priority ones")
	fs.IntVar(&o.Retries, "retries", sr.Retries, "retry failed retryable model calls up to N additional times (capped backoff, seeded jitter)")
	fs.DurationVar(&o.Timeout, "timeout", sr.Timeout, "per-call simulated deadline across retries; 0 disables")
	fs.DurationVar(&o.HedgeAfter, "hedge", sr.HedgeAfter, "race a backup model call once the primary exceeds this simulated latency; 0 disables")
	fs.IntVar(&o.Breaker, "breaker", 0, "trip a per-model circuit breaker after N consecutive failures; 0 disables (order-dependent, see DESIGN.md §9)")
	fs.Float64Var(&o.FaultRate, "fault-rate", 0, "inject deterministic transport faults at this per-attempt probability (chaos testing)")
	fs.StringVar(&o.CacheDir, "cache-dir", "", "persist temperature-0 completions and verdict memos in this directory; restarts answer repeated work at zero fee (DESIGN.md §11). Datasets ingested via POST /v1/datasets persist here too")
	fs.BoolVar(&o.Route, "route", false, "decompose compound claims and route each sub-claim to the best-matching table (DESIGN.md §16); in -coordinator mode sub-claims fan out across the ring by their routed fingerprint")
	fs.IntVar(&o.RouteTopK, "route-topk", 0, "candidate tables the routing stage considers per sub-claim; 0 uses the built-in default")
	fs.IntVar(&o.SampleRows, "sample-rows", 0, "default row budget for POST /v1/datasets ingestions: keep at most N rows, reservoir-sampled deterministically (default 50000)")
	fs.Int64Var(&o.MaxIngestBytes, "max-ingest-bytes", 0, "default byte budget for POST /v1/datasets ingestions, stopping at the last complete record (default 32 MiB)")
	fs.BoolVar(&o.Coordinator, "coordinator", false, "run as a sharding coordinator: route requests to the -replicas processes instead of verifying locally (DESIGN.md §13)")
	fs.Var((*cliutil.URLList)(&o.Replicas), "replicas", "replica base URL for -coordinator mode; repeat (or comma-separate) for more")
	fs.StringVar(&o.ReplicaOf, "replica-of", "", "coordinator base URL this replica registers with on startup and deregisters from when draining")
	fs.DurationVar(&o.ProbeInterval, "probe-interval", 500*time.Millisecond, "coordinator health-probe cadence; a replica failing two consecutive probes is ejected and its keyspace rehashed")
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	flag.Parse()
	if len(o.CSVPaths) == 0 && len(o.Datasets) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "cedar-serve:", err)
		os.Exit(1)
	}
}

// newServer builds the serving stack — database, profiled System, backend
// adapter, HTTP server — without binding a listener, so tests can drive it
// through httptest. The returned closer releases the System's persistent
// store handles (-cache-dir); call it after Shutdown, and before another
// newServer may reopen the same directory (warm restart).
func newServer(o *serveOptions) (*serve.Server, func() error, error) {
	return newServerSink(o, nil)
}

// newServerSink is newServer with a span sink: when non-nil, sink receives
// every micro-batch's trace spans right after the batch's run completes
// (the System resets its tracer at each run start, so without a sink only
// the last batch's spans survive). The sharded-identity harness uses it to
// harvest each replica's full verification trace for cross-topology
// comparison.
func newServerSink(o *serveOptions, sink func([]trace.Span)) (*serve.Server, func() error, error) {
	db, dbName, err := loadServeDatabase(o)
	if err != nil {
		return nil, nil, err
	}
	// The tracer feeds the per-method rollups of GET /v1/metrics; the
	// backend resets it each micro-batch, so memory stays bounded.
	tracer := cedar.NewTracer()
	sys, err := cedar.New(cedar.Options{
		Seed:             o.Seed,
		AccuracyTarget:   o.Target,
		Workers:          o.Workers,
		Retries:          o.Retries,
		Timeout:          o.Timeout,
		HedgeAfter:       o.HedgeAfter,
		BreakerThreshold: o.Breaker,
		FaultRate:        o.FaultRate,
		CacheDir:         o.CacheDir,
		Route:            o.Route,
		RouteTopK:        o.RouteTopK,
		Tracer:           tracer,
	})
	if err != nil {
		return nil, nil, err
	}
	if o.StatsPath != "" {
		stats, err := profile.LoadStats(o.StatsPath)
		if err != nil {
			sys.Close()
			return nil, nil, err
		}
		if err := sys.SetStats(stats); err != nil {
			sys.Close()
			return nil, nil, err
		}
	} else {
		// The same built-in profiling corpus cmd/cedar uses, so a served
		// run reproduces a CLI run of the same seed exactly.
		profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, o.Seed+100)
		if err != nil {
			sys.Close()
			return nil, nil, err
		}
		if err := sys.ProfileOn(profDocs[:6]); err != nil {
			sys.Close()
			return nil, nil, err
		}
	}
	// The dataset registry shares the System's persistent store (when
	// -cache-dir is set), so ingested catalogs survive restarts; named
	// -dataset flags restore persisted datasets into the catalog before the
	// first request, recording each sampling decision in the trace.
	reg := ingest.NewRegistry(db, sys.Store(), ingest.Options{
		SampleRows: o.SampleRows,
		MaxBytes:   o.MaxIngestBytes,
		Seed:       o.Seed,
	})
	for _, name := range o.Datasets {
		ds, err := reg.LoadDataset(name)
		if err != nil {
			sys.Close()
			return nil, nil, err
		}
		tracer.Record(trace.Span{
			Key:    trace.Key{Doc: dbName, Method: "ingest"},
			Kind:   trace.KindIngestSample,
			Detail: ds.Info.SampleDetail(),
		})
	}
	if o.Route {
		// After dataset restore, so ingested tables are routable too.
		if err := sys.SetCatalog(db); err != nil {
			sys.Close()
			return nil, nil, err
		}
	}
	backend := serve.BackendFunc(func(docs []*cedar.Document) (serve.RunStats, error) {
		rep, err := sys.Verify(docs)
		if err != nil {
			return serve.RunStats{}, err
		}
		if sink != nil {
			sink(tracer.Spans())
		}
		return serve.RunStats{Claims: rep.Claims, Dollars: rep.Dollars, Calls: rep.Calls}, nil
	})
	srv, err := serve.New(serve.Config{
		Backend:        backend,
		DB:             db,
		DocID:          dbName,
		MaxBatch:       o.MaxBatch,
		BatchWait:      o.BatchWait,
		QueueDepth:     o.QueueDepth,
		RequestTimeout: o.RequestTimeout,
		RetryAfter:     o.RetryAfter,
		StreamWindow:   o.StreamWindow,
		ReviewCap:      o.ReviewCap,
		Schedule:       sys.Schedule(),
		Resilience:     func() metrics.ResilienceSnapshot { return sys.Resilience() },
		Tracer:         tracer,
		Datasets:       reg,
	})
	if err != nil {
		sys.Close()
		return nil, nil, err
	}
	return srv, sys.Close, nil
}

// loadServeDatabase builds the serving database: the -csv tables when
// given, otherwise an empty catalog named for -table or the first -dataset
// (the persisted datasets themselves load after the System exists, through
// the registry sharing its store).
func loadServeDatabase(o *serveOptions) (*sqldb.Database, string, error) {
	if len(o.CSVPaths) > 0 {
		return cliutil.LoadDatabase(o.CSVPaths, o.TableName)
	}
	name := o.TableName
	if name == "" {
		if len(o.Datasets) == 0 {
			return nil, "", fmt.Errorf("one of -csv, -dataset, or -table is required")
		}
		name = o.Datasets[0]
	}
	return sqldb.NewDatabase(name), name, nil
}

// routeKeyFor builds the coordinator's shard key function: the claim/config
// fingerprint. The config tag pins the parameters that determine verdicts
// (seed, accuracy target, database name), so coordinators for different
// serving configurations hash the same document differently — routing
// identity follows verification identity.
func routeKeyFor(o *serveOptions, dbName string) func(docID string, claims []serve.ClaimInput) []byte {
	cfgTag := fmt.Sprintf("cedar-serve|seed=%d|target=%g|db=%s", o.Seed, o.Target, dbName)
	return func(docID string, claims []serve.ClaimInput) []byte {
		fields := make([]string, 0, 2+3*len(claims))
		fields = append(fields, cfgTag, docID)
		for _, c := range claims {
			fields = append(fields, c.Sentence, c.Value, c.Context)
		}
		return shard.Fingerprint(fields...)
	}
}

// newCoordinator builds the -coordinator serving stack without binding a
// listener. The database is loaded only for its name: the coordinator must
// derive the same default document ID the replicas do, so a request that
// omits doc_id routes by the identity the replica will verify under.
func newCoordinator(o *serveOptions) (*serve.Coordinator, error) {
	if len(o.Replicas) == 0 {
		return nil, fmt.Errorf("-coordinator requires at least one -replicas URL")
	}
	db, dbName, err := loadServeDatabase(o)
	if err != nil {
		return nil, err
	}
	cfg := serve.CoordinatorConfig{
		RouteKey:       routeKeyFor(o, dbName),
		DocID:          dbName,
		Replicas:       o.Replicas,
		ProbeInterval:  o.ProbeInterval,
		StreamWindow:   o.StreamWindow,
		RequestTimeout: o.RequestTimeout,
	}
	if o.Route && len(db.Tables()) > 0 {
		// The coordinator decomposes compound claims itself so sub-claims can
		// fan out across the ring; a dataset-only coordinator has no catalog
		// here and relays whole documents — the replicas route internally.
		cfg.Route = &serve.RouteConfig{
			Catalog: route.NewCatalog(db),
			Seed:    o.Seed,
			TopK:    o.RouteTopK,
		}
	}
	return serve.NewCoordinator(cfg)
}

// advertiseURL derives the URL a replica registers under from its -addr: a
// bare ":port" advertises the loopback address (the sharded tier's intended
// single-host deployment); anything else is used as given.
func advertiseURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	if !strings.Contains(addr, "://") {
		return "http://" + addr
	}
	return addr
}

// registerReplica announces self to the coordinator's ring.
func registerReplica(coordinator, self string) error {
	body, err := json.Marshal(serve.ReplicaRequest{URL: self})
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimSuffix(coordinator, "/")+"/v1/replicas", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("registering with coordinator: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d to replica registration", resp.StatusCode)
	}
	return nil
}

// deregisterReplica withdraws self from the coordinator's ring — the first
// step of a replica's graceful drain, so new requests rehash immediately
// while admitted work finishes here.
func deregisterReplica(coordinator, self string) error {
	req, err := http.NewRequest(http.MethodDelete,
		strings.TrimSuffix(coordinator, "/")+"/v1/replicas?url="+url.QueryEscape(self), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("deregistering from coordinator: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d to replica deregistration", resp.StatusCode)
	}
	return nil
}

func run(o *serveOptions) error {
	if o.Coordinator {
		return runCoordinator(o)
	}
	srv, closeSys, err := newServer(o)
	if err != nil {
		return err
	}
	defer closeSys()
	httpSrv := &http.Server{
		Addr:              o.Addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cedar-serve: listening on %s", o.Addr)
	self := advertiseURL(o.Addr)
	if o.ReplicaOf != "" {
		if err := registerReplica(o.ReplicaOf, self); err != nil {
			return err
		}
		log.Printf("cedar-serve: registered as %s with coordinator %s", self, o.ReplicaOf)
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain, in order: leave the coordinator's ring so new work
	// rehashes at once, stop admitting and verify everything already
	// accepted, then close the listener so in-flight handlers deliver their
	// responses before the process exits.
	log.Printf("cedar-serve: draining (admitted requests finish, new ones get 503)")
	if o.ReplicaOf != "" {
		if err := deregisterReplica(o.ReplicaOf, self); err != nil {
			log.Printf("cedar-serve: %v (draining anyway)", err)
		}
	}
	dctx, cancel := context.WithTimeout(context.Background(), o.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cedar-serve: drained cleanly")
	return nil
}

// runCoordinator is run's -coordinator branch: same listener lifecycle and
// drain choreography, with the sharding front end as the handler.
func runCoordinator(o *serveOptions) error {
	coord, err := newCoordinator(o)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              o.Addr,
		Handler:           coord,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cedar-serve: coordinating %d replica(s) on %s", len(o.Replicas), o.Addr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("cedar-serve: coordinator draining")
	dctx, cancel := context.WithTimeout(context.Background(), o.DrainTimeout)
	defer cancel()
	if err := coord.Shutdown(dctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cedar-serve: coordinator drained cleanly")
	return nil
}
