package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/cedar"
	"repro/internal/cliutil"
	"repro/internal/exp"
	"repro/internal/serve"
)

func writeCSVFixture(t *testing.T) string {
	t.Helper()
	csvPath := filepath.Join(t.TempDir(), "airlines.csv")
	if err := os.WriteFile(csvPath, []byte(
		"airline,incidents_85_99,fatal_accidents_00_14,fatalities_00_14\n"+
			"Aer Lingus,2,0,0\n"+
			"Aeroflot,76,1,88\n"+
			"Malaysia Airlines,3,2,537\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath
}

// testOptions parses an empty command line so every option carries its real
// flag default, then points the server at the fixture database.
func testOptions(t *testing.T, csvPath string) *serveOptions {
	t.Helper()
	fs := flag.NewFlagSet("cedar-serve", flag.ContinueOnError)
	o := defineFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o.CSVPaths = []string{csvPath}
	return o
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

var testClaims = []serve.ClaimInput{
	{ID: "good", Sentence: "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.", Value: "2"},
	{ID: "bad", Sentence: "The highest fatalities between 2000 and 2014 recorded was 999.", Value: "999"},
}

// TestServedMatchesDirectRun is the CLI/HTTP bit-identity contract: the same
// seed, database, and claims produce identical verdicts and identical
// ledger totals whether they arrive over HTTP or through the library entry
// point the cedar CLI uses.
func TestServedMatchesDirectRun(t *testing.T) {
	csvPath := writeCSVFixture(t)
	o := testOptions(t, csvPath)
	o.BatchWait = -1 // every request rides alone, like a CLI run

	srv, closeSys, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSys()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(serve.VerifyRequest{Claims: testClaims})
	if err != nil {
		t.Fatal(err)
	}
	post := func() serve.VerifyResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var out serve.VerifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	served := post()
	// Serving is stateless across batches: a repeat of the same request
	// reproduces itself exactly (the ledger and tracer reset per run).
	if again := post(); !reflect.DeepEqual(served, again) {
		t.Errorf("served response not reproducible:\nfirst  %+v\nsecond %+v", served, again)
	}

	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The reference run: same database, same resilience options, same
	// profiling corpus, through the entry point cmd/cedar uses.
	db, dbName, err := cliutil.LoadDatabase(o.CSVPaths, o.TableName)
	if err != nil {
		t.Fatal(err)
	}
	sr := exp.ServingResilience()
	sys, err := cedar.New(cedar.Options{
		Seed:           o.Seed,
		AccuracyTarget: o.Target,
		Workers:        o.Workers,
		Retries:        sr.Retries,
		Timeout:        sr.Timeout,
		HedgeAfter:     sr.HedgeAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, o.Seed+100)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	var claims []*cedar.Claim
	for _, in := range testClaims {
		c, err := cedar.NewClaim(in.ID, in.Sentence, in.Value, in.Context)
		if err != nil {
			t.Fatal(err)
		}
		claims = append(claims, c)
	}
	rep, err := sys.VerifyClaims(dbName, db, claims)
	if err != nil {
		t.Fatal(err)
	}

	if served.DocID != dbName {
		t.Errorf("served doc_id = %q, want the CLI's %q", served.DocID, dbName)
	}
	if len(served.Claims) != len(claims) {
		t.Fatalf("served %d claims, want %d", len(served.Claims), len(claims))
	}
	for i, c := range claims {
		got := served.Claims[i]
		want := serve.ClaimResult{
			ID:       c.ID,
			Correct:  c.Result.Correct,
			Verified: c.Result.Verified,
			Method:   c.Result.Method,
			Query:    c.Result.Query,
			Attempts: c.Result.Attempts,
			Failure:  c.Result.Failure,
		}
		if got != want {
			t.Errorf("claim %s served %+v, direct run %+v", c.ID, got, want)
		}
	}
	if served.Batch.Claims != rep.Claims || served.Batch.Dollars != rep.Dollars || served.Batch.Calls != rep.Calls {
		t.Errorf("served batch totals %+v, direct run claims=%d dollars=%v calls=%d",
			served.Batch, rep.Claims, rep.Dollars, rep.Calls)
	}
}

// The server's status surface reflects its flag defaults, and the metrics
// endpoint exposes the resilience counters of the serving middleware stack.
func TestServerStatusAndResilienceMetrics(t *testing.T) {
	csvPath := writeCSVFixture(t)
	o := testOptions(t, csvPath)
	srv, closeSys, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSys()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	body, err := json.Marshal(serve.VerifyRequest{Claims: testClaims[:1]})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d, want 200", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.StatusResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.State != "serving" || st.MaxBatch != o.MaxBatch || st.QueueCap != o.QueueDepth || st.Schedule == "" {
		t.Errorf("status = %+v", st)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met serve.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.Resilience == nil || met.Resilience.Attempts == 0 {
		t.Errorf("resilience counters missing or empty: %+v", met.Resilience)
	}
	if len(met.Methods) == 0 {
		t.Error("per-method rollups missing: the server's tracer is not feeding /v1/metrics")
	}
	if met.Verify.Claims != 1 {
		t.Errorf("verify claims = %d, want 1", met.Verify.Claims)
	}
}

// TestServeWarmRestart pins the -cache-dir restart contract: a server rebuilt
// over the same cache directory answers the same request with identical
// verdicts at strictly lower cost — persisted temperature-0 completions are
// served from disk instead of re-billed. Verdict-level identity is the
// contract here: the serving stack retries and hedges by default, and a cold
// retry-then-success persists its completion under a retry-agnostic key, so
// the warm run legitimately skips the cold run's fault/retry attempts
// (DESIGN.md §11).
func TestServeWarmRestart(t *testing.T) {
	csvPath := writeCSVFixture(t)
	cacheDir := t.TempDir()

	post := func(ts *httptest.Server) serve.VerifyResponse {
		t.Helper()
		body, err := json.Marshal(serve.VerifyRequest{Claims: testClaims})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var out serve.VerifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	serveOnce := func() serve.VerifyResponse {
		t.Helper()
		o := testOptions(t, csvPath)
		o.BatchWait = -1
		o.CacheDir = cacheDir
		srv, closeSys, err := newServer(o)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		out := post(ts)
		ts.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if err := closeSys(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := serveOnce() // process 1: pays, persists
	warm := serveOnce() // process 2: fresh System, same directory

	if !reflect.DeepEqual(cold.Claims, warm.Claims) {
		t.Errorf("verdicts changed across restart:\n cold %+v\n warm %+v", cold.Claims, warm.Claims)
	}
	if warm.Batch.Dollars >= cold.Batch.Dollars {
		t.Errorf("warm restart cost $%.4f, not below cold $%.4f", warm.Batch.Dollars, cold.Batch.Dollars)
	}
	if warm.Batch.Calls >= cold.Batch.Calls {
		t.Errorf("warm restart made %d calls, not below cold %d", warm.Batch.Calls, cold.Batch.Calls)
	}
}
