package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestStreamedMatchesUnaryRuns is the cmd-level half of the streaming
// determinism contract: documents pushed through POST /v1/verify/stream get
// bit-identical verdicts — over the real cedar.System backend — to the same
// (doc_id, claims) POSTed unary, and the stream's fee summary equals the sum
// of the unary runs. Streamed documents are ordinary micro-batches; arrival
// via a stream changes latency shape, never answers.
func TestStreamedMatchesUnaryRuns(t *testing.T) {
	csvPath := writeCSVFixture(t)
	o := testOptions(t, csvPath)
	o.BatchWait = -1

	srv, closeSys, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSys()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	docs := []serve.DocumentInput{
		{DocID: "stream-a", Claims: testClaims},
		{DocID: "stream-b", Claims: testClaims[:1]},
	}
	var lines []string
	for _, d := range docs {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	resp, err := http.Post(ts.URL+"/v1/verify/stream", "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}

	byDoc := map[string][]serve.ClaimResult{}
	var sum *serve.StreamSummary
	dec := json.NewDecoder(resp.Body)
	for {
		var ev serve.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		switch ev.Event {
		case "verdict":
			byDoc[ev.DocID] = append(byDoc[ev.DocID], *ev.Claim)
		case "error":
			t.Fatalf("stream error event: %+v", ev.Error)
		case "summary":
			sum = ev.Summary
		}
	}
	if sum == nil || sum.Docs != 2 || sum.Claims != 3 {
		t.Fatalf("stream summary = %+v, want 2 docs / 3 claims", sum)
	}

	// The reference: each document POSTed unary against the same server.
	var unaryDollars float64
	var unaryCalls int
	for _, d := range docs {
		body, err := json.Marshal(serve.VerifyRequest{DocID: d.DocID, Claims: d.Claims})
		if err != nil {
			t.Fatal(err)
		}
		uresp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		if uresp.StatusCode != http.StatusOK {
			t.Fatalf("unary status = %d, want 200", uresp.StatusCode)
		}
		var out serve.VerifyResponse
		if err := json.NewDecoder(uresp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		uresp.Body.Close()
		streamed := byDoc[d.DocID]
		if len(streamed) != len(out.Claims) {
			t.Fatalf("doc %s: streamed %d verdicts, unary %d", d.DocID, len(streamed), len(out.Claims))
		}
		for i := range out.Claims {
			if streamed[i] != out.Claims[i] {
				t.Errorf("doc %s claim %d:\n streamed %+v\n unary    %+v", d.DocID, i, streamed[i], out.Claims[i])
			}
		}
		unaryDollars += out.Batch.Dollars
		unaryCalls += out.Batch.Calls
	}
	if math.Abs(sum.Dollars-unaryDollars) > 1e-9 {
		t.Errorf("stream dollars = %v, unary total %v", sum.Dollars, unaryDollars)
	}
	if sum.Calls != unaryCalls {
		t.Errorf("stream calls = %d, unary total %d", sum.Calls, unaryCalls)
	}
}
