package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// writeDrinksFixture is the second database of the routed serving tests:
// vocabulary disjoint from the airlines fixture, so each conjunct of a
// compound claim has exactly one plausible home.
func writeDrinksFixture(t *testing.T) string {
	t.Helper()
	csvPath := filepath.Join(t.TempDir(), "drinks.csv")
	if err := os.WriteFile(csvPath, []byte(
		"country,beer_servings,wine_servings\n"+
			"France,127,370\n"+
			"Germany,346,175\n"+
			"Brazil,245,59\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return csvPath
}

// routedTune turns one tier option set into a route-enabled two-table
// deployment (airlines + drinks).
func routedTune(drinksCSV string) func(*serveOptions) {
	return func(o *serveOptions) {
		o.CSVPaths = append(o.CSVPaths, drinksCSV)
		o.Route = true
	}
}

// routedWorkload mixes compound claims spanning both tables (correct and
// incorrect conjuncts) with simple single-table claims.
func routedWorkload(w int) []serve.VerifyRequest {
	out := make([]serve.VerifyRequest, 0, w)
	for i := 0; i < w; i++ {
		req := serve.VerifyRequest{
			DocID: fmt.Sprintf("routed-doc-%d", i),
			Claims: []serve.ClaimInput{
				{ID: "mixed", Sentence: "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014, and France recorded 370 wine servings.", Value: "2"},
				{ID: "simple", Sentence: "Aeroflot logged 76 incidents between 1985 and 1999.", Value: "76"},
			},
		}
		if i%2 == 0 {
			req.Claims = append(req.Claims, serve.ClaimInput{
				ID: "badmix", Sentence: "Aer Lingus recorded 0 fatal accidents between 2000 and 2014, and Germany recorded 999 wine servings.", Value: "0"})
		}
		out = append(out, req)
	}
	return out
}

// TestRoutedShardedIdentity extends the sharded-identity contract to routed
// serving: with -route on, compound claims decompose at the coordinator and
// their sub-claims fan out across the ring by routed fingerprint, yet every
// shard count yields bit-identical recombined verdicts.
func TestRoutedShardedIdentity(t *testing.T) {
	airlinesCSV := writeCSVFixture(t)
	drinksCSV := writeDrinksFixture(t)
	reqs := routedWorkload(8)

	results := make(map[int]map[string][]serve.ClaimResult)
	for _, shards := range []int{1, 4} {
		tier := bootShardTier(t, airlinesCSV, shards, routedTune(drinksCSV))
		results[shards] = runShardWorkload(t, tier, reqs)
		if shards > 1 {
			touched := 0
			for _, rep := range tier.replicas {
				if len(rep.sink.all()) > 0 {
					touched++
				}
			}
			if touched < 2 {
				t.Errorf("only %d of %d replicas verified anything; routed fan-out is not spreading load", touched, shards)
			}
		}
	}

	base := results[1]
	for doc, claims := range base {
		for _, c := range claims {
			switch c.ID {
			case "mixed", "badmix":
				if !strings.HasPrefix(c.Method, "route(") {
					t.Errorf("%s/%s method = %q, want route(...) — compound claim was not decomposed", doc, c.ID, c.Method)
				}
				if !strings.Contains(c.Query, "; ") {
					t.Errorf("%s/%s query = %q, want joined sub-claim queries", doc, c.ID, c.Query)
				}
			case "simple":
				if strings.HasPrefix(c.Method, "route(") {
					t.Errorf("%s/%s is a simple claim but was routed: %q", doc, c.ID, c.Method)
				}
			}
			if c.ID == "mixed" && !c.Correct {
				t.Errorf("%s/mixed flagged incorrect; both conjuncts are true", doc)
			}
			if c.ID == "badmix" && c.Correct && c.Verified {
				t.Errorf("%s/badmix verified correct; the drinks conjunct is planted wrong", doc)
			}
		}
	}
	if !reflect.DeepEqual(base, results[4]) {
		t.Error("routed verdicts at 4 shards differ from 1 shard")
	}
}

// TestRoutedServingMatchesDirect pins cross-topology routing identity: the
// coordinator decomposing compound claims itself (sub-claims verified on
// ring replicas, recombined at the front end) answers exactly what a single
// route-enabled replica answers by routing internally via the library path.
// Content-addressed unit IDs are what makes the seeded verdicts line up.
func TestRoutedServingMatchesDirect(t *testing.T) {
	airlinesCSV := writeCSVFixture(t)
	drinksCSV := writeDrinksFixture(t)
	reqs := routedWorkload(6)

	o := testOptions(t, airlinesCSV)
	o.BatchWait = -1
	routedTune(drinksCSV)(o)
	srv, closeSys, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSys()
	direct := httptest.NewServer(srv)
	defer direct.Close()
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(10 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	client := &http.Client{Timeout: 60 * time.Second}
	directVerdicts := make(map[string][]serve.ClaimResult, len(reqs))
	directCounts := make(map[string][3]int, len(reqs))
	directDollars := 0.0
	for _, req := range reqs {
		resp, code := postShardVerify(t, client, direct.URL, req)
		if code != http.StatusOK {
			t.Fatalf("direct replica answered %d for %s", code, req.DocID)
		}
		directVerdicts[resp.DocID] = resp.Claims
		directCounts[resp.DocID] = [3]int{resp.Batch.Docs, resp.Batch.Claims, resp.Batch.Calls}
		directDollars += resp.Batch.Dollars
	}

	tier := bootShardTier(t, airlinesCSV, 4, routedTune(drinksCSV))
	coordDollars := 0.0
	coordVerdicts := make(map[string][]serve.ClaimResult, len(reqs))
	for _, req := range reqs {
		resp, code := postShardVerify(t, client, tier.coordTS.URL, req)
		if code != http.StatusOK {
			t.Fatalf("coordinator answered %d for %s", code, req.DocID)
		}
		coordVerdicts[resp.DocID] = resp.Claims
		// Batch stats describe the caller's request on both topologies: the
		// coordinator must not leak the expanded unit-document counts.
		if got, want := [3]int{resp.Batch.Docs, resp.Batch.Claims, resp.Batch.Calls}, directCounts[resp.DocID]; got != want {
			t.Errorf("%s batch docs/claims/calls = %v, want %v (direct replica)", resp.DocID, got, want)
		}
		coordDollars += resp.Batch.Dollars
	}

	if !reflect.DeepEqual(directVerdicts, coordVerdicts) {
		t.Error("coordinator-routed verdicts differ from the direct route-enabled replica")
	}
	// Fee identity: the coordinator books the routing fees its own planner
	// decided, the replicas book the unit verification — together exactly the
	// library path's ledger (tolerance covers float summation order only).
	if math.Abs(directDollars-coordDollars) > 1e-9 {
		t.Errorf("routed fees diverge across topologies: direct $%.10f, coordinator $%.10f", directDollars, coordDollars)
	}
}

// TestRoutedBatchMergesCallerOrder drives the routed batch path: one
// request whose documents mix compound and simple claims comes back in
// caller order with recombined verdicts.
func TestRoutedBatchMergesCallerOrder(t *testing.T) {
	airlinesCSV := writeCSVFixture(t)
	drinksCSV := writeDrinksFixture(t)
	tier := bootShardTier(t, airlinesCSV, 4, routedTune(drinksCSV))

	reqs := routedWorkload(5)
	batch := serve.BatchRequest{}
	for _, r := range reqs {
		batch.Documents = append(batch.Documents, serve.DocumentInput{DocID: r.DocID, Claims: r.Claims})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tier.coordTS.URL+"/v1/verify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed batch answered %d", resp.StatusCode)
	}
	var out serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Documents) != len(reqs) {
		t.Fatalf("%d documents answered, want %d", len(out.Documents), len(reqs))
	}
	for i, d := range out.Documents {
		if d.DocID != reqs[i].DocID {
			t.Fatalf("document %d is %s, want %s — caller order not preserved", i, d.DocID, reqs[i].DocID)
		}
		if len(d.Claims) != len(reqs[i].Claims) {
			t.Fatalf("%s answered %d claims, want %d", d.DocID, len(d.Claims), len(reqs[i].Claims))
		}
		for j, c := range d.Claims {
			if c.ID != reqs[i].Claims[j].ID {
				t.Errorf("%s claim %d is %s, want %s", d.DocID, j, c.ID, reqs[i].Claims[j].ID)
			}
		}
		if m := d.Claims[0].Method; !strings.HasPrefix(m, "route(") {
			t.Errorf("%s compound claim method = %q, want route(...)", d.DocID, m)
		}
	}
	if out.Batch.Dollars <= 0 || out.Batch.Calls <= 0 {
		t.Errorf("routed batch stats empty: %+v", out.Batch)
	}
}

// TestRoutedCoordinatorPassthrough pins the degenerate case: a request with
// no compound claims takes the ordinary relay path through a route-enabled
// coordinator — the response is byte-identical to a route-less tier's.
func TestRoutedCoordinatorPassthrough(t *testing.T) {
	airlinesCSV := writeCSVFixture(t)
	drinksCSV := writeDrinksFixture(t)
	plain := bootShardTier(t, airlinesCSV, 1, func(o *serveOptions) {
		o.CSVPaths = append(o.CSVPaths, drinksCSV)
	})
	routed := bootShardTier(t, airlinesCSV, 1, routedTune(drinksCSV))

	req := serve.VerifyRequest{DocID: "simple-doc", Claims: testClaims}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(base string) []byte {
		t.Helper()
		resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s answered %d", base, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	plainBody := fetch(plain.coordTS.URL)
	routedBody := fetch(routed.coordTS.URL)
	if !bytes.Equal(plainBody, routedBody) {
		t.Errorf("simple-claim response differs with routing enabled:\nplain:  %s\nrouted: %s", plainBody, routedBody)
	}
}
