package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/doclint"
)

// TestDoclintFlags is this binary's half of the documented-surface gate:
// every flag defineFlags registers must appear in the cedar-serve section
// of docs/CLI.md.
func TestDoclintFlags(t *testing.T) {
	doc, err := doclint.CLIDoc()
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("cedar-serve", flag.ContinueOnError)
	defineFlags(fs)
	missing, err := doclint.MissingFlags(doc, "cedar-serve", fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("flags undocumented in docs/CLI.md: -%s", strings.Join(missing, ", -"))
	}
}

// The HTTP routes are a documented surface too: each must be named in the
// cedar-serve section's API reference.
func TestDoclintRoutes(t *testing.T) {
	doc, err := doclint.CLIDoc()
	if err != nil {
		t.Fatal(err)
	}
	section, err := doclint.BinarySection(doc, "cedar-serve")
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{
		"POST /v1/verify",
		"POST /v1/verify/batch",
		"POST /v1/verify/stream",
		"GET /v1/review",
		"POST /v1/review/{id}",
		"POST /v1/datasets",
		"GET /v1/datasets",
		"GET /v1/datasets/{name}",
		"DELETE /v1/datasets/{name}",
		"GET /v1/status",
		"GET /v1/metrics",
		"GET /healthz",
	} {
		if !strings.Contains(section, route) {
			t.Errorf("route %q undocumented in docs/CLI.md", route)
		}
	}
}
