package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
	"repro/internal/trace"
)

// spanSink accumulates the per-micro-batch trace spans newServerSink hands
// out, so the harness can compare a replica's full verification trace.
type spanSink struct {
	mu    sync.Mutex
	spans []trace.Span
}

func (s *spanSink) add(spans []trace.Span) {
	s.mu.Lock()
	s.spans = append(s.spans, spans...)
	s.mu.Unlock()
}

func (s *spanSink) all() []trace.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]trace.Span(nil), s.spans...)
}

// shardReplica is one in-process replica: a full cedar-serve stack (own
// System, own profiling pass) behind a real loopback listener.
type shardReplica struct {
	srv  *serve.Server
	ts   *httptest.Server
	sink *spanSink
}

// shardTier is the in-process multi-replica fixture of the sharded-identity
// harness: a coordinator plus n replicas on loopback, all sharing one
// database fixture and seed — the topology `cedar-serve -coordinator`
// assembles from separate processes.
type shardTier struct {
	coord    *serve.Coordinator
	coordTS  *httptest.Server
	replicas []*shardReplica
	opts     *serveOptions
}

func bootShardTier(t *testing.T, csvPath string, n int, tune func(*serveOptions)) *shardTier {
	t.Helper()
	tier := &shardTier{}
	for i := 0; i < n; i++ {
		o := testOptions(t, csvPath)
		o.BatchWait = -1
		if tune != nil {
			tune(o)
		}
		sink := &spanSink{}
		srv, closeSys, err := newServerSink(o, sink.add)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		rep := &shardReplica{srv: srv, ts: ts, sink: sink}
		tier.replicas = append(tier.replicas, rep)
		t.Cleanup(func() {
			ctx, cancel := contextWithTimeout(10 * time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			_ = closeSys()
		})
	}
	o := testOptions(t, csvPath)
	if tune != nil {
		tune(o)
	}
	for _, rep := range tier.replicas {
		o.Replicas = append(o.Replicas, rep.ts.URL)
	}
	o.ProbeInterval = 20 * time.Millisecond
	coord, err := newCoordinator(o)
	if err != nil {
		t.Fatal(err)
	}
	tier.coord = coord
	tier.coordTS = httptest.NewServer(coord)
	tier.opts = o
	t.Cleanup(func() {
		tier.coordTS.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
		for _, rep := range tier.replicas {
			rep.ts.Close()
		}
	})
	return tier
}

// shardWorkload builds W documents over the airlines fixture with a mix of
// correct and incorrect claims, so the quality partition under comparison is
// non-trivial (some verified-correct, some not).
func shardWorkload(w int) []serve.VerifyRequest {
	out := make([]serve.VerifyRequest, 0, w)
	for i := 0; i < w; i++ {
		req := serve.VerifyRequest{
			DocID: fmt.Sprintf("shard-doc-%d", i),
			Claims: []serve.ClaimInput{
				{ID: "good", Sentence: "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.", Value: "2"},
				{ID: "bad", Sentence: "The highest fatalities between 2000 and 2014 recorded was 999.", Value: "999"},
			},
		}
		if i%2 == 0 {
			req.Claims = append(req.Claims, serve.ClaimInput{
				ID: "agg", Sentence: "Aeroflot logged 76 incidents between 1985 and 1999.", Value: "76"})
		}
		out = append(out, req)
	}
	return out
}

// postShardVerify submits one document through the coordinator. It runs on
// workload goroutines, so failures use t.Error (goroutine-safe) and surface
// as a zero status code for the test goroutine to act on.
func postShardVerify(t *testing.T, client *http.Client, base string, req serve.VerifyRequest) (serve.VerifyResponse, int) {
	t.Helper()
	var out serve.VerifyResponse
	body, err := json.Marshal(req)
	if err != nil {
		t.Error(err)
		return out, 0
	}
	resp, err := client.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Error(err)
		return out, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Error(err)
			return out, 0
		}
	}
	return out, resp.StatusCode
}

// runShardWorkload pushes the whole workload through the coordinator
// concurrently and returns verdicts keyed by document ID.
func runShardWorkload(t *testing.T, tier *shardTier, reqs []serve.VerifyRequest) map[string][]serve.ClaimResult {
	t.Helper()
	client := &http.Client{Timeout: 60 * time.Second}
	verdicts := make([]serve.VerifyResponse, len(reqs))
	codes := make([]int, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req serve.VerifyRequest) {
			defer wg.Done()
			verdicts[i], codes[i] = postShardVerify(t, client, tier.coordTS.URL, req)
		}(i, req)
	}
	wg.Wait()
	out := make(map[string][]serve.ClaimResult, len(reqs))
	for i, v := range verdicts {
		if codes[i] != http.StatusOK {
			t.Fatalf("document %s answered %d, want 200", reqs[i].DocID, codes[i])
		}
		out[v.DocID] = v.Claims
	}
	return out
}

// mergedNormalizedTrace merges every replica's harvested spans, restores
// canonical order, and strips topology-dependent noise — the cross-topology
// trace identity surface.
func mergedNormalizedTrace(t *testing.T, tier *shardTier) []byte {
	t.Helper()
	var all []trace.Span
	for _, rep := range tier.replicas {
		all = append(all, rep.sink.all()...)
	}
	sortSpans(all)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, sp := range trace.ReplayNormalize(all) {
		if err := enc.Encode(sp); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func sortSpans(spans []trace.Span) {
	for i := 1; i < len(spans); i++ { // insertion sort keeps this test dependency-free
		for j := i; j > 0 && spans[j].Less(spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// TestShardedServingIdentity is the sharded-tier determinism harness: the
// same workload served at shard counts 1, 2, 4, and 8 yields bit-identical
// verdicts, an identical quality partition, and a byte-identical normalized
// merged trace — sharding buys throughput, never different answers.
func TestShardedServingIdentity(t *testing.T) {
	csvPath := writeCSVFixture(t)
	reqs := shardWorkload(10)

	type topology struct {
		verdicts map[string][]serve.ClaimResult
		trace    []byte
	}
	results := make(map[int]topology)
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			tier := bootShardTier(t, csvPath, shards, nil)
			verdicts := runShardWorkload(t, tier, reqs)
			if len(verdicts) != len(reqs) {
				t.Fatalf("%d documents answered, want %d", len(verdicts), len(reqs))
			}
			results[shards] = topology{verdicts: verdicts, trace: mergedNormalizedTrace(t, tier)}

			if shards > 1 {
				touched := 0
				for _, rep := range tier.replicas {
					if len(rep.sink.all()) > 0 {
						touched++
					}
				}
				if touched < 2 {
					t.Errorf("only %d of %d replicas verified anything; the ring is not spreading load", touched, shards)
				}
			}
		})
	}

	base := results[1]
	// The workload's quality partition is non-trivial: both verified-correct
	// and failed claims appear, so identity below is not vacuous.
	good, bad := 0, 0
	for _, claims := range base.verdicts {
		for _, c := range claims {
			if c.Verified && c.Correct {
				good++
			} else {
				bad++
			}
		}
	}
	if good == 0 || bad == 0 {
		t.Fatalf("degenerate workload: %d verified-correct, %d other", good, bad)
	}
	for _, shards := range []int{2, 4, 8} {
		got := results[shards]
		if got.verdicts == nil {
			t.Fatalf("no results for %d shards", shards)
		}
		if !reflect.DeepEqual(base.verdicts, got.verdicts) {
			t.Errorf("verdicts at %d shards differ from 1 shard", shards)
		}
		if !bytes.Equal(base.trace, got.trace) {
			t.Errorf("normalized merged trace at %d shards differs from 1 shard (%d vs %d bytes)",
				shards, len(got.trace), len(base.trace))
		}
	}
	if len(base.trace) == 0 {
		t.Error("normalized trace is empty; the span sink harvested nothing")
	}
}

// TestShardFailoverChaos kills a replica mid-load — listener and all live
// connections — and asserts zero lost and zero duplicated claims: every
// document still gets exactly one 200 response, and the verdicts are
// bit-identical to an undisturbed single-shard run (re-verification on the
// failover successor is deterministic).
func TestShardFailoverChaos(t *testing.T) {
	csvPath := writeCSVFixture(t)
	reqs := shardWorkload(12)

	baseline := runShardWorkload(t, bootShardTier(t, csvPath, 1, nil), reqs)

	tier := bootShardTier(t, csvPath, 3, func(o *serveOptions) {
		o.BatchWait = 10 * time.Millisecond // linger so load overlaps the kill
	})
	// Pick the victim: the replica owning the most documents, so the kill
	// lands on in-flight and future traffic alike.
	dbName := cliutil.TableName(csvPath)
	rk := routeKeyFor(tier.opts, dbName)
	owned := map[string]int{}
	for _, req := range reqs {
		owner, ok := tier.coord.Owner(rk(req.DocID, req.Claims))
		if !ok {
			t.Fatal("ring empty")
		}
		owned[owner]++
	}
	victim := tier.replicas[0]
	for _, rep := range tier.replicas {
		if owned[rep.ts.URL] > owned[victim.ts.URL] {
			victim = rep
		}
	}
	if owned[victim.ts.URL] == 0 {
		t.Fatal("victim owns no documents; chaos test would be vacuous")
	}

	client := &http.Client{Timeout: 60 * time.Second}
	verdicts := make([]serve.VerifyResponse, len(reqs))
	codes := make([]int, len(reqs))
	var wg sync.WaitGroup
	fire := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// A request the dead replica had already accepted surfaces
				// as 502 replica_lost rather than a silent re-run on the
				// successor: the retry decision belongs to the caller.
				// This caller retries, so no claim is lost.
				for try := 0; try < 20; try++ {
					verdicts[i], codes[i] = postShardVerify(t, client, tier.coordTS.URL, reqs[i])
					if codes[i] != http.StatusBadGateway {
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
			}(i)
		}
	}
	// First wave in flight, then the kill: live connections die mid-request
	// and the listener stops accepting. Undelivered in-flight requests fail
	// over transparently, delivered ones come back 502 replica_lost and are
	// retried above, and the second wave must route around the corpse.
	fire(0, len(reqs)/2)
	time.Sleep(5 * time.Millisecond) // let some of the wave reach replicas
	victim.ts.CloseClientConnections()
	victim.ts.Listener.Close()
	fire(len(reqs)/2, len(reqs))
	wg.Wait()

	got := make(map[string][]serve.ClaimResult, len(reqs))
	for i := range reqs {
		if codes[i] != http.StatusOK {
			t.Fatalf("document %s answered %d after replica kill, want 200 (lost claim)", reqs[i].DocID, codes[i])
		}
		if _, dup := got[verdicts[i].DocID]; dup {
			t.Fatalf("document %s answered twice (duplicated claim)", verdicts[i].DocID)
		}
		got[verdicts[i].DocID] = verdicts[i].Claims
	}
	if !reflect.DeepEqual(baseline, got) {
		t.Error("verdicts after mid-load replica kill differ from the undisturbed baseline")
	}

	// The tier noticed: the victim was ejected from the ring (breaker trip)
	// after traffic and probes fed its failures.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		healthy := false
		for _, rep := range tier.coord.Replicas() {
			if rep.URL == victim.ts.URL && rep.Healthy {
				healthy = true
			}
		}
		if !healthy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("killed replica still healthy on the coordinator after 5s")
}

// TestShardReplicaSelfRegistration covers the -replica-of lifecycle helpers:
// a replica joins a live coordinator's ring, serves its share, and leaves on
// drain so new work rehashes to the survivors.
func TestShardReplicaSelfRegistration(t *testing.T) {
	csvPath := writeCSVFixture(t)
	tier := bootShardTier(t, csvPath, 1, nil)

	// A second replica registers itself the way run() does with -replica-of.
	o := testOptions(t, csvPath)
	o.BatchWait = -1
	srv, closeSys, err := newServerSink(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = closeSys()
	})
	if err := registerReplica(tier.coordTS.URL, ts.URL); err != nil {
		t.Fatal(err)
	}
	roster := tier.coord.Replicas()
	if len(roster) != 2 {
		t.Fatalf("roster after self-registration = %+v, want 2 replicas", roster)
	}

	if err := deregisterReplica(tier.coordTS.URL, ts.URL); err != nil {
		t.Fatal(err)
	}
	if roster = tier.coord.Replicas(); len(roster) != 1 {
		t.Fatalf("roster after deregistration = %+v, want 1 replica", roster)
	}

	// advertiseURL pins the -addr -> registration URL derivation.
	for in, want := range map[string]string{
		":8080":                  "http://127.0.0.1:8080",
		"10.0.0.5:8080":          "http://10.0.0.5:8080",
		"http://10.0.0.5:8080":   "http://10.0.0.5:8080",
		"https://replica-1:8443": "https://replica-1:8443",
	} {
		if got := advertiseURL(in); got != want {
			t.Errorf("advertiseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
