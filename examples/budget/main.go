// Budget: planning verification under a hard per-claim spending limit — the
// inverse of the paper's accuracy-target knob. A compliance team has a
// fixed review budget per claim; CEDAR picks the schedule with maximal
// modeled accuracy whose expected cost fits.
//
//	go run ./examples/budget
package main

import (
	"fmt"
	"log"

	"repro/cedar"
)

func main() {
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, 77)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Schedules planned for increasing per-claim budgets:")
	fmt.Printf("%-14s %-62s %10s %8s\n", "budget/claim", "schedule", "cost ($)", "F1")
	for _, budget := range []float64{0.0002, 0.0005, 0.002, 0.02} {
		sys, err := cedar.New(cedar.Options{Seed: 13, CostBudgetPerClaim: budget})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.ProfileOn(profDocs[:8]); err != nil {
			log.Fatal(err)
		}
		docs, err := cedar.Benchmark(cedar.BenchAggChecker, 78)
		if err != nil {
			log.Fatal(err)
		}
		docs = docs[:16]
		rep, err := sys.Verify(docs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("$%-13.4f %-62s %10.4f %7.1f%%\n",
			budget, sys.Schedule(), rep.Dollars, rep.Quality.F1*100)
	}
	fmt.Println("\nMore budget buys more capable stages and more retries; the realized")
	fmt.Println("fee stays near the planned expectation because the cost model prices")
	fmt.Println("each stage by its profiled per-claim fee and reach probability.")
}
