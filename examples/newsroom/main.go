// Newsroom: the spell-checker-for-numbers scenario from the paper's
// introduction. A data desk verifies a batch of article drafts against
// their source tables at different accuracy targets, trading verification
// fees for thoroughness.
//
//	go run ./examples/newsroom
package main

import (
	"fmt"
	"log"

	"repro/cedar"
)

func main() {
	// A batch of AggChecker-style article drafts (56 documents, 392
	// numerical claims over newspaper/survey/Wikipedia-shaped tables),
	// with gold labels so we can score the runs.
	articles, err := cedar.Benchmark(cedar.BenchAggChecker, 2025)
	if err != nil {
		log.Fatal(err)
	}
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Verifying 392 claims from 56 article drafts at three accuracy targets.")
	fmt.Printf("%-8s %-58s %10s %10s %8s\n", "target", "schedule", "flagged", "cost ($)", "F1")
	for _, target := range []float64{0.6, 0.9, 0.99} {
		sys, err := cedar.New(cedar.Options{Seed: 7, AccuracyTarget: target})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.ProfileOn(profDocs[:8]); err != nil {
			log.Fatal(err)
		}
		// Fresh copies per run so verdicts do not leak between targets.
		docs, err := cedar.Benchmark(cedar.BenchAggChecker, 2025)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Verify(docs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-58s %10d %10.4f %7.1f%%\n",
			target, sys.Schedule(), rep.Flagged, rep.Dollars, rep.Quality.F1*100)
	}

	// Show a handful of flagged claims the way an editor would see them.
	sys, err := cedar.New(cedar.Options{Seed: 7, AccuracyTarget: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:8]); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Verify(articles); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSample of flagged claims (verify before publishing):")
	shown := 0
	for _, d := range articles {
		for _, c := range d.Claims {
			if c.Result.Correct || shown >= 5 {
				continue
			}
			shown++
			fmt.Printf("  [%s] %s\n      checked via: %s\n", d.ID, c.Sentence, c.Result.Query)
		}
	}
}
