// Joinbench: verifying claims against a normalized multi-table schema,
// where verification queries require joins (Section 7.3.2). The same
// English claim that needs a single-table lookup on a flat schema needs a
// key join once the data is normalized — and CEDAR's translation layer
// builds the join automatically.
//
//	go run ./examples/joinbench
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/cedar"
)

func main() {
	// Normalized airline-safety schema: an entity table plus one table per
	// measure, linked by airline_id.
	db := cedar.NewDatabase("airlinesafety_norm")
	add := func(name, csv string) {
		t, err := cedar.LoadCSVTable(name, strings.NewReader(csv))
		if err != nil {
			log.Fatal(err)
		}
		db.AddTable(t)
	}
	add("airlines",
		"airline_id,airline\n1,Aer Lingus\n2,Aeroflot\n3,Malaysia Airlines\n4,United / Continental\n")
	add("safety_recent",
		"airline_id,fatal_accidents_00_14\n1,0\n2,1\n3,2\n4,2\n")
	add("fatalities",
		"airline_id,fatalities_00_14\n1,0\n2,88\n3,537\n4,109\n")

	mk := func(id, sentence, value string) *cedar.Claim {
		c, err := cedar.NewClaim(id, sentence, value, "")
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	doc := &cedar.Document{ID: "joined", Data: db, Claims: []*cedar.Claim{
		mk("lookup", "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.", "2"),
		mk("argmax", "Malaysia Airlines recorded the highest fatalities between 2000 and 2014 of all airlines.", "Malaysia Airlines"),
		// Wrong on purpose.
		mk("wrong", "Aeroflot recorded 12 fatal accidents between 2000 and 2014.", "12"),
	}}

	sys, err := cedar.New(cedar.Options{Seed: 9, AccuracyTarget: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, 55)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Verify([]*cedar.Document{doc}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Claims verified against the normalized (multi-table) schema:")
	joins := 0
	for _, c := range doc.Claims {
		verdict := "correct"
		if !c.Result.Correct {
			verdict = "INCORRECT"
		}
		if strings.Contains(c.Result.Query, "JOIN") {
			joins++
		}
		fmt.Printf("\n%-8s %-9s %s\n", c.ID, verdict, c.Sentence)
		fmt.Printf("         query: %s\n", c.Result.Query)
	}
	fmt.Printf("\n%d of %d verification queries required joins.\n", joins, len(doc.Claims))
}
