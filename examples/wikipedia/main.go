// Wikipedia: verifying textual claims — claims whose value is an entity
// name rather than a number ("x holds the record for the most race wins").
// Textual verdicts go through the embedding-similarity comparison of
// Algorithm 3 instead of precision-aware rounding.
//
//	go run ./examples/wikipedia
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/cedar"
)

func main() {
	// Hand-built Formula One article with textual claims, mirroring the
	// sample prompt of Table 1 in the paper.
	db := cedar.NewDatabase("f1")
	table, err := cedar.LoadCSVTable("f1", strings.NewReader(
		"driver,country,wins,championships\n"+
			"Lewis Hamilton,UK,105,7\n"+
			"Michael Schumacher,Germany,91,7\n"+
			"Sebastian Vettel,Germany,53,4\n"+
			"Giuseppe Farina,Italy,5,1\n"))
	if err != nil {
		log.Fatal(err)
	}
	db.AddTable(table)

	mk := func(id, sentence, value string) *cedar.Claim {
		c, err := cedar.NewClaim(id, sentence, value, "")
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	doc := &cedar.Document{ID: "f1-article", Data: db, Claims: []*cedar.Claim{
		mk("most-wins", "Lewis Hamilton recorded the highest race wins of all drivers.", "Lewis Hamilton"),
		mk("fewest-wins", "Giuseppe Farina recorded the lowest race wins of all drivers.", "Giuseppe Farina"),
		// Wrong on purpose: Vettel does not hold the win record.
		mk("wrong-record", "Sebastian Vettel recorded the highest race wins of all drivers.", "Sebastian Vettel"),
	}}

	sys, err := cedar.New(cedar.Options{Seed: 3, AccuracyTarget: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	// Profile on the WikiText-shaped benchmark: textual claims need their
	// own statistics (agent methods shine here).
	profDocs, err := cedar.Benchmark(cedar.BenchWikiText, 11)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule:", sys.Schedule())

	if _, err := sys.Verify([]*cedar.Document{doc}); err != nil {
		log.Fatal(err)
	}
	for _, c := range doc.Claims {
		verdict := "correct"
		if !c.Result.Correct {
			verdict = "INCORRECT"
		}
		fmt.Printf("\n%-12s %-9s %s\n", c.ID, verdict, c.Sentence)
		fmt.Printf("             query: %s\n", c.Result.Query)
	}

	// And the full WikiText benchmark with scoring.
	fmt.Println("\nScoring the WikiText benchmark (50 textual claims):")
	wiki, err := cedar.Benchmark(cedar.BenchWikiText, 12)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Verify(wiki)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v\n", rep)
}
