// Quickstart: verify two claims about the paper's running example — the
// airline-safety table — through CEDAR's public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/cedar"
)

func main() {
	// 1. The data the claims refer to (Definition 2.1's d.data).
	db := cedar.NewDatabase("airlinesafety")
	table, err := cedar.LoadCSVTable("airlines", strings.NewReader(
		"airline,incidents_85_99,fatal_accidents_00_14,fatalities_00_14\n"+
			"Aer Lingus,2,0,0\n"+
			"Aeroflot,76,1,88\n"+
			"Malaysia Airlines,3,2,537\n"+
			"United / Continental,19,2,109\n"))
	if err != nil {
		log.Fatal(err)
	}
	db.AddTable(table)

	// 2. The claims (Definition 2.2): a sentence, the claimed value, and
	// optional context. The first is the paper's Example 1.1; the second
	// is wrong on purpose.
	trueClaim, err := cedar.NewClaim("example-1.1",
		"Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.",
		"2", "")
	if err != nil {
		log.Fatal(err)
	}
	falseClaim, err := cedar.NewClaim("wrong",
		"A total of 9999 fatalities between 2000 and 2014 were recorded across all airlines.",
		"9999", "")
	if err != nil {
		log.Fatal(err)
	}
	doc := &cedar.Document{ID: "quickstart", Data: db, Claims: []*cedar.Claim{trueClaim, falseClaim}}

	// 3. A CEDAR system: profile the verification methods on a labeled
	// sample so the cost-based scheduler can plan, then verify.
	sys, err := cedar.New(cedar.Options{Seed: 1, AccuracyTarget: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	profDocs, err := cedar.Benchmark(cedar.BenchAggChecker, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned schedule:", sys.Schedule())

	report, err := sys.Verify([]*cedar.Document{doc})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the verdicts and the SQL queries used for verification.
	for _, c := range doc.Claims {
		verdict := "correct"
		if !c.Result.Correct {
			verdict = "INCORRECT"
		}
		fmt.Printf("\n%s: %s\n  claim: %s\n  query: %s\n", c.ID, verdict, c.Sentence, c.Result.Query)
	}
	fmt.Printf("\nsimulated verification fee: $%.4f over %d model calls\n", report.Dollars, report.Calls)
}
